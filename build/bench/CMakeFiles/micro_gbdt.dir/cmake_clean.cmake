file(REMOVE_RECURSE
  "CMakeFiles/micro_gbdt.dir/micro_gbdt.cpp.o"
  "CMakeFiles/micro_gbdt.dir/micro_gbdt.cpp.o.d"
  "micro_gbdt"
  "micro_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
