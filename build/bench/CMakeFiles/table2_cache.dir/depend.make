# Empty dependencies file for table2_cache.
# This may be replaced when dependencies are built.
