file(REMOVE_RECURSE
  "CMakeFiles/table2_cache.dir/table2_cache.cpp.o"
  "CMakeFiles/table2_cache.dir/table2_cache.cpp.o.d"
  "table2_cache"
  "table2_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
