file(REMOVE_RECURSE
  "CMakeFiles/latency_vs_load.dir/latency_vs_load.cpp.o"
  "CMakeFiles/latency_vs_load.dir/latency_vs_load.cpp.o.d"
  "latency_vs_load"
  "latency_vs_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_vs_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
