# Empty dependencies file for latency_vs_load.
# This may be replaced when dependencies are built.
