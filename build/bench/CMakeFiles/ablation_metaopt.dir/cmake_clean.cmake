file(REMOVE_RECURSE
  "CMakeFiles/ablation_metaopt.dir/ablation_metaopt.cpp.o"
  "CMakeFiles/ablation_metaopt.dir/ablation_metaopt.cpp.o.d"
  "ablation_metaopt"
  "ablation_metaopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_metaopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
