# Empty compiler generated dependencies file for ablation_metaopt.
# This may be replaced when dependencies are built.
