file(REMOVE_RECURSE
  "CMakeFiles/fig7_efficiency.dir/fig7_efficiency.cpp.o"
  "CMakeFiles/fig7_efficiency.dir/fig7_efficiency.cpp.o.d"
  "fig7_efficiency"
  "fig7_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
