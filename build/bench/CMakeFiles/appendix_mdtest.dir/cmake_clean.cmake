file(REMOVE_RECURSE
  "CMakeFiles/appendix_mdtest.dir/appendix_mdtest.cpp.o"
  "CMakeFiles/appendix_mdtest.dir/appendix_mdtest.cpp.o.d"
  "appendix_mdtest"
  "appendix_mdtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_mdtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
