# Empty compiler generated dependencies file for appendix_mdtest.
# This may be replaced when dependencies are built.
