file(REMOVE_RECURSE
  "CMakeFiles/appendix_live.dir/appendix_live.cpp.o"
  "CMakeFiles/appendix_live.dir/appendix_live.cpp.o.d"
  "appendix_live"
  "appendix_live.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
