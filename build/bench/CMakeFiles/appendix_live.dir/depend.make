# Empty dependencies file for appendix_live.
# This may be replaced when dependencies are built.
