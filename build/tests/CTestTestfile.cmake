# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/kv_extra_test[1]_include.cmake")
include("/root/repo/build/tests/origami_fs_test[1]_include.cmake")
include("/root/repo/build/tests/live_balancer_test[1]_include.cmake")
include("/root/repo/build/tests/fsns_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_flags_test[1]_include.cmake")
include("/root/repo/build/tests/sim_net_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/wl_test[1]_include.cmake")
include("/root/repo/build/tests/mds_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/meta_opt_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/ml_extra_test[1]_include.cmake")
include("/root/repo/build/tests/balancer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/replay_property_test[1]_include.cmake")
include("/root/repo/build/tests/features_extra_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweep_test[1]_include.cmake")
