file(REMOVE_RECURSE
  "CMakeFiles/meta_opt_test.dir/meta_opt_test.cpp.o"
  "CMakeFiles/meta_opt_test.dir/meta_opt_test.cpp.o.d"
  "meta_opt_test"
  "meta_opt_test.pdb"
  "meta_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
