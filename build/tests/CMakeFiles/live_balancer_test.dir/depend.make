# Empty dependencies file for live_balancer_test.
# This may be replaced when dependencies are built.
