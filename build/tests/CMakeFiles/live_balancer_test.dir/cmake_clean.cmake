file(REMOVE_RECURSE
  "CMakeFiles/live_balancer_test.dir/live_balancer_test.cpp.o"
  "CMakeFiles/live_balancer_test.dir/live_balancer_test.cpp.o.d"
  "live_balancer_test"
  "live_balancer_test.pdb"
  "live_balancer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
