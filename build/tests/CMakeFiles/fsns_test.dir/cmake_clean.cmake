file(REMOVE_RECURSE
  "CMakeFiles/fsns_test.dir/fsns_test.cpp.o"
  "CMakeFiles/fsns_test.dir/fsns_test.cpp.o.d"
  "fsns_test"
  "fsns_test.pdb"
  "fsns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
