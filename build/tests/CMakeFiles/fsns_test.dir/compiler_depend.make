# Empty compiler generated dependencies file for fsns_test.
# This may be replaced when dependencies are built.
