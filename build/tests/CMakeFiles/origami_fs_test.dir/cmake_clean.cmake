file(REMOVE_RECURSE
  "CMakeFiles/origami_fs_test.dir/origami_fs_test.cpp.o"
  "CMakeFiles/origami_fs_test.dir/origami_fs_test.cpp.o.d"
  "origami_fs_test"
  "origami_fs_test.pdb"
  "origami_fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
