# Empty compiler generated dependencies file for origami_fs_test.
# This may be replaced when dependencies are built.
