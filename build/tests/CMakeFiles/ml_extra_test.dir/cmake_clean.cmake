file(REMOVE_RECURSE
  "CMakeFiles/ml_extra_test.dir/ml_extra_test.cpp.o"
  "CMakeFiles/ml_extra_test.dir/ml_extra_test.cpp.o.d"
  "ml_extra_test"
  "ml_extra_test.pdb"
  "ml_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
