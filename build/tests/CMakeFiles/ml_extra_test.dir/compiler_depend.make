# Empty compiler generated dependencies file for ml_extra_test.
# This may be replaced when dependencies are built.
