file(REMOVE_RECURSE
  "CMakeFiles/balancer_test.dir/balancer_test.cpp.o"
  "CMakeFiles/balancer_test.dir/balancer_test.cpp.o.d"
  "balancer_test"
  "balancer_test.pdb"
  "balancer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
