file(REMOVE_RECURSE
  "CMakeFiles/resolver_flags_test.dir/resolver_flags_test.cpp.o"
  "CMakeFiles/resolver_flags_test.dir/resolver_flags_test.cpp.o.d"
  "resolver_flags_test"
  "resolver_flags_test.pdb"
  "resolver_flags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_flags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
