# Empty dependencies file for resolver_flags_test.
# This may be replaced when dependencies are built.
