# Empty dependencies file for features_extra_test.
# This may be replaced when dependencies are built.
