file(REMOVE_RECURSE
  "CMakeFiles/features_extra_test.dir/features_extra_test.cpp.o"
  "CMakeFiles/features_extra_test.dir/features_extra_test.cpp.o.d"
  "features_extra_test"
  "features_extra_test.pdb"
  "features_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/features_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
