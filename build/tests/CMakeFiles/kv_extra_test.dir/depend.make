# Empty dependencies file for kv_extra_test.
# This may be replaced when dependencies are built.
