file(REMOVE_RECURSE
  "CMakeFiles/kv_extra_test.dir/kv_extra_test.cpp.o"
  "CMakeFiles/kv_extra_test.dir/kv_extra_test.cpp.o.d"
  "kv_extra_test"
  "kv_extra_test.pdb"
  "kv_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
