file(REMOVE_RECURSE
  "CMakeFiles/replay_property_test.dir/replay_property_test.cpp.o"
  "CMakeFiles/replay_property_test.dir/replay_property_test.cpp.o.d"
  "replay_property_test"
  "replay_property_test.pdb"
  "replay_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
