file(REMOVE_RECURSE
  "CMakeFiles/replay_custom_trace.dir/replay_custom_trace.cpp.o"
  "CMakeFiles/replay_custom_trace.dir/replay_custom_trace.cpp.o.d"
  "replay_custom_trace"
  "replay_custom_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_custom_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
