# Empty dependencies file for replay_custom_trace.
# This may be replaced when dependencies are built.
