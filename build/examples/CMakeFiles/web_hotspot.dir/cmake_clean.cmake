file(REMOVE_RECURSE
  "CMakeFiles/web_hotspot.dir/web_hotspot.cpp.o"
  "CMakeFiles/web_hotspot.dir/web_hotspot.cpp.o.d"
  "web_hotspot"
  "web_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
