# Empty dependencies file for web_hotspot.
# This may be replaced when dependencies are built.
