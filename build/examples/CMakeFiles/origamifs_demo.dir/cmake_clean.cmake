file(REMOVE_RECURSE
  "CMakeFiles/origamifs_demo.dir/origamifs_demo.cpp.o"
  "CMakeFiles/origamifs_demo.dir/origamifs_demo.cpp.o.d"
  "origamifs_demo"
  "origamifs_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origamifs_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
