# Empty compiler generated dependencies file for origamifs_demo.
# This may be replaced when dependencies are built.
