file(REMOVE_RECURSE
  "liborigami_cluster.a"
)
