file(REMOVE_RECURSE
  "CMakeFiles/origami_cluster.dir/replay.cpp.o"
  "CMakeFiles/origami_cluster.dir/replay.cpp.o.d"
  "liborigami_cluster.a"
  "liborigami_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
