# Empty compiler generated dependencies file for origami_cluster.
# This may be replaced when dependencies are built.
