file(REMOVE_RECURSE
  "CMakeFiles/origami_fsns.dir/dir_tree.cpp.o"
  "CMakeFiles/origami_fsns.dir/dir_tree.cpp.o.d"
  "CMakeFiles/origami_fsns.dir/path_resolver.cpp.o"
  "CMakeFiles/origami_fsns.dir/path_resolver.cpp.o.d"
  "CMakeFiles/origami_fsns.dir/types.cpp.o"
  "CMakeFiles/origami_fsns.dir/types.cpp.o.d"
  "liborigami_fsns.a"
  "liborigami_fsns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_fsns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
