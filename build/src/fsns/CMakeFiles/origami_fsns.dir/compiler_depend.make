# Empty compiler generated dependencies file for origami_fsns.
# This may be replaced when dependencies are built.
