file(REMOVE_RECURSE
  "liborigami_fsns.a"
)
