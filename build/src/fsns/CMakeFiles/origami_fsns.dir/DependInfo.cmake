
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsns/dir_tree.cpp" "src/fsns/CMakeFiles/origami_fsns.dir/dir_tree.cpp.o" "gcc" "src/fsns/CMakeFiles/origami_fsns.dir/dir_tree.cpp.o.d"
  "/root/repo/src/fsns/path_resolver.cpp" "src/fsns/CMakeFiles/origami_fsns.dir/path_resolver.cpp.o" "gcc" "src/fsns/CMakeFiles/origami_fsns.dir/path_resolver.cpp.o.d"
  "/root/repo/src/fsns/types.cpp" "src/fsns/CMakeFiles/origami_fsns.dir/types.cpp.o" "gcc" "src/fsns/CMakeFiles/origami_fsns.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/origami_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
