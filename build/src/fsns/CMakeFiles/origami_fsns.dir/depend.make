# Empty dependencies file for origami_fsns.
# This may be replaced when dependencies are built.
