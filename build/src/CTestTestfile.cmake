# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("kvstore")
subdirs("fsns")
subdirs("sim")
subdirs("net")
subdirs("cost")
subdirs("wl")
subdirs("mds")
subdirs("fs")
subdirs("cluster")
subdirs("ml")
subdirs("core")
