file(REMOVE_RECURSE
  "liborigami_common.a"
)
