# Empty dependencies file for origami_common.
# This may be replaced when dependencies are built.
