file(REMOVE_RECURSE
  "CMakeFiles/origami_common.dir/csv.cpp.o"
  "CMakeFiles/origami_common.dir/csv.cpp.o.d"
  "CMakeFiles/origami_common.dir/flags.cpp.o"
  "CMakeFiles/origami_common.dir/flags.cpp.o.d"
  "CMakeFiles/origami_common.dir/histogram.cpp.o"
  "CMakeFiles/origami_common.dir/histogram.cpp.o.d"
  "CMakeFiles/origami_common.dir/log.cpp.o"
  "CMakeFiles/origami_common.dir/log.cpp.o.d"
  "CMakeFiles/origami_common.dir/rng.cpp.o"
  "CMakeFiles/origami_common.dir/rng.cpp.o.d"
  "CMakeFiles/origami_common.dir/status.cpp.o"
  "CMakeFiles/origami_common.dir/status.cpp.o.d"
  "CMakeFiles/origami_common.dir/thread_pool.cpp.o"
  "CMakeFiles/origami_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/origami_common.dir/zipf.cpp.o"
  "CMakeFiles/origami_common.dir/zipf.cpp.o.d"
  "liborigami_common.a"
  "liborigami_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
