# Empty dependencies file for origami_fs.
# This may be replaced when dependencies are built.
