file(REMOVE_RECURSE
  "liborigami_fs.a"
)
