file(REMOVE_RECURSE
  "CMakeFiles/origami_fs.dir/live_replay.cpp.o"
  "CMakeFiles/origami_fs.dir/live_replay.cpp.o.d"
  "CMakeFiles/origami_fs.dir/origami_fs.cpp.o"
  "CMakeFiles/origami_fs.dir/origami_fs.cpp.o.d"
  "liborigami_fs.a"
  "liborigami_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
