# Empty dependencies file for origami_kv.
# This may be replaced when dependencies are built.
