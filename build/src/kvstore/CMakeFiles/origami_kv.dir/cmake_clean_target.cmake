file(REMOVE_RECURSE
  "liborigami_kv.a"
)
