file(REMOVE_RECURSE
  "CMakeFiles/origami_kv.dir/bloom.cpp.o"
  "CMakeFiles/origami_kv.dir/bloom.cpp.o.d"
  "CMakeFiles/origami_kv.dir/db.cpp.o"
  "CMakeFiles/origami_kv.dir/db.cpp.o.d"
  "CMakeFiles/origami_kv.dir/memtable.cpp.o"
  "CMakeFiles/origami_kv.dir/memtable.cpp.o.d"
  "CMakeFiles/origami_kv.dir/sorted_run.cpp.o"
  "CMakeFiles/origami_kv.dir/sorted_run.cpp.o.d"
  "CMakeFiles/origami_kv.dir/wal.cpp.o"
  "CMakeFiles/origami_kv.dir/wal.cpp.o.d"
  "liborigami_kv.a"
  "liborigami_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
