
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mds/client_cache.cpp" "src/mds/CMakeFiles/origami_mds.dir/client_cache.cpp.o" "gcc" "src/mds/CMakeFiles/origami_mds.dir/client_cache.cpp.o.d"
  "/root/repo/src/mds/data_cluster.cpp" "src/mds/CMakeFiles/origami_mds.dir/data_cluster.cpp.o" "gcc" "src/mds/CMakeFiles/origami_mds.dir/data_cluster.cpp.o.d"
  "/root/repo/src/mds/inode_store.cpp" "src/mds/CMakeFiles/origami_mds.dir/inode_store.cpp.o" "gcc" "src/mds/CMakeFiles/origami_mds.dir/inode_store.cpp.o.d"
  "/root/repo/src/mds/mds_server.cpp" "src/mds/CMakeFiles/origami_mds.dir/mds_server.cpp.o" "gcc" "src/mds/CMakeFiles/origami_mds.dir/mds_server.cpp.o.d"
  "/root/repo/src/mds/partition.cpp" "src/mds/CMakeFiles/origami_mds.dir/partition.cpp.o" "gcc" "src/mds/CMakeFiles/origami_mds.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/origami_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fsns/CMakeFiles/origami_fsns.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/origami_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/origami_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/origami_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/origami_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
