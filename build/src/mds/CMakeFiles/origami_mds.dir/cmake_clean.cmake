file(REMOVE_RECURSE
  "CMakeFiles/origami_mds.dir/client_cache.cpp.o"
  "CMakeFiles/origami_mds.dir/client_cache.cpp.o.d"
  "CMakeFiles/origami_mds.dir/data_cluster.cpp.o"
  "CMakeFiles/origami_mds.dir/data_cluster.cpp.o.d"
  "CMakeFiles/origami_mds.dir/inode_store.cpp.o"
  "CMakeFiles/origami_mds.dir/inode_store.cpp.o.d"
  "CMakeFiles/origami_mds.dir/mds_server.cpp.o"
  "CMakeFiles/origami_mds.dir/mds_server.cpp.o.d"
  "CMakeFiles/origami_mds.dir/partition.cpp.o"
  "CMakeFiles/origami_mds.dir/partition.cpp.o.d"
  "liborigami_mds.a"
  "liborigami_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
