# Empty compiler generated dependencies file for origami_mds.
# This may be replaced when dependencies are built.
