file(REMOVE_RECURSE
  "liborigami_mds.a"
)
