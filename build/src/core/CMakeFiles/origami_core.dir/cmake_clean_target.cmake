file(REMOVE_RECURSE
  "liborigami_core.a"
)
