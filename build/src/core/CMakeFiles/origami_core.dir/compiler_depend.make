# Empty compiler generated dependencies file for origami_core.
# This may be replaced when dependencies are built.
