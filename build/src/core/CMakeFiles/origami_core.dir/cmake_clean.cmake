file(REMOVE_RECURSE
  "CMakeFiles/origami_core.dir/balancers.cpp.o"
  "CMakeFiles/origami_core.dir/balancers.cpp.o.d"
  "CMakeFiles/origami_core.dir/features.cpp.o"
  "CMakeFiles/origami_core.dir/features.cpp.o.d"
  "CMakeFiles/origami_core.dir/live_balancer.cpp.o"
  "CMakeFiles/origami_core.dir/live_balancer.cpp.o.d"
  "CMakeFiles/origami_core.dir/meta_opt.cpp.o"
  "CMakeFiles/origami_core.dir/meta_opt.cpp.o.d"
  "CMakeFiles/origami_core.dir/pipeline.cpp.o"
  "CMakeFiles/origami_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/origami_core.dir/subtree.cpp.o"
  "CMakeFiles/origami_core.dir/subtree.cpp.o.d"
  "liborigami_core.a"
  "liborigami_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
