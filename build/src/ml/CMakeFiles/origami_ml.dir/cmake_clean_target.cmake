file(REMOVE_RECURSE
  "liborigami_ml.a"
)
