
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/origami_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/origami_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/gbdt.cpp" "src/ml/CMakeFiles/origami_ml.dir/gbdt.cpp.o" "gcc" "src/ml/CMakeFiles/origami_ml.dir/gbdt.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/origami_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/origami_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/origami_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/origami_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/origami_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/origami_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/validation.cpp" "src/ml/CMakeFiles/origami_ml.dir/validation.cpp.o" "gcc" "src/ml/CMakeFiles/origami_ml.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/origami_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
