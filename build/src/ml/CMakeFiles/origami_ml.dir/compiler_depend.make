# Empty compiler generated dependencies file for origami_ml.
# This may be replaced when dependencies are built.
