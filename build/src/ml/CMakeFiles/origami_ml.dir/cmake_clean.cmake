file(REMOVE_RECURSE
  "CMakeFiles/origami_ml.dir/dataset.cpp.o"
  "CMakeFiles/origami_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/origami_ml.dir/gbdt.cpp.o"
  "CMakeFiles/origami_ml.dir/gbdt.cpp.o.d"
  "CMakeFiles/origami_ml.dir/linear.cpp.o"
  "CMakeFiles/origami_ml.dir/linear.cpp.o.d"
  "CMakeFiles/origami_ml.dir/metrics.cpp.o"
  "CMakeFiles/origami_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/origami_ml.dir/mlp.cpp.o"
  "CMakeFiles/origami_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/origami_ml.dir/validation.cpp.o"
  "CMakeFiles/origami_ml.dir/validation.cpp.o.d"
  "liborigami_ml.a"
  "liborigami_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
