file(REMOVE_RECURSE
  "liborigami_sim.a"
)
