file(REMOVE_RECURSE
  "CMakeFiles/origami_sim.dir/event_queue.cpp.o"
  "CMakeFiles/origami_sim.dir/event_queue.cpp.o.d"
  "liborigami_sim.a"
  "liborigami_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
