# Empty compiler generated dependencies file for origami_sim.
# This may be replaced when dependencies are built.
