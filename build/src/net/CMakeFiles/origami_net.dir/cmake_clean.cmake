file(REMOVE_RECURSE
  "CMakeFiles/origami_net.dir/network.cpp.o"
  "CMakeFiles/origami_net.dir/network.cpp.o.d"
  "liborigami_net.a"
  "liborigami_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
