# Empty compiler generated dependencies file for origami_net.
# This may be replaced when dependencies are built.
