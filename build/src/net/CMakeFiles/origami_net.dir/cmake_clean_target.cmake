file(REMOVE_RECURSE
  "liborigami_net.a"
)
