# Empty dependencies file for origami_cost.
# This may be replaced when dependencies are built.
