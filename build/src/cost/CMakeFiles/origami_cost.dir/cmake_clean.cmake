file(REMOVE_RECURSE
  "CMakeFiles/origami_cost.dir/cost_model.cpp.o"
  "CMakeFiles/origami_cost.dir/cost_model.cpp.o.d"
  "liborigami_cost.a"
  "liborigami_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
