file(REMOVE_RECURSE
  "liborigami_cost.a"
)
