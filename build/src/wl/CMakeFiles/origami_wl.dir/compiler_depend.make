# Empty compiler generated dependencies file for origami_wl.
# This may be replaced when dependencies are built.
