file(REMOVE_RECURSE
  "liborigami_wl.a"
)
