
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wl/generators.cpp" "src/wl/CMakeFiles/origami_wl.dir/generators.cpp.o" "gcc" "src/wl/CMakeFiles/origami_wl.dir/generators.cpp.o.d"
  "/root/repo/src/wl/mixer.cpp" "src/wl/CMakeFiles/origami_wl.dir/mixer.cpp.o" "gcc" "src/wl/CMakeFiles/origami_wl.dir/mixer.cpp.o.d"
  "/root/repo/src/wl/text_trace.cpp" "src/wl/CMakeFiles/origami_wl.dir/text_trace.cpp.o" "gcc" "src/wl/CMakeFiles/origami_wl.dir/text_trace.cpp.o.d"
  "/root/repo/src/wl/trace.cpp" "src/wl/CMakeFiles/origami_wl.dir/trace.cpp.o" "gcc" "src/wl/CMakeFiles/origami_wl.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/origami_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fsns/CMakeFiles/origami_fsns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
