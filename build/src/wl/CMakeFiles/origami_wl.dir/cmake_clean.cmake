file(REMOVE_RECURSE
  "CMakeFiles/origami_wl.dir/generators.cpp.o"
  "CMakeFiles/origami_wl.dir/generators.cpp.o.d"
  "CMakeFiles/origami_wl.dir/mixer.cpp.o"
  "CMakeFiles/origami_wl.dir/mixer.cpp.o.d"
  "CMakeFiles/origami_wl.dir/text_trace.cpp.o"
  "CMakeFiles/origami_wl.dir/text_trace.cpp.o.d"
  "CMakeFiles/origami_wl.dir/trace.cpp.o"
  "CMakeFiles/origami_wl.dir/trace.cpp.o.d"
  "liborigami_wl.a"
  "liborigami_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/origami_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
