# Empty dependencies file for tool_origami_sim.
# This may be replaced when dependencies are built.
