file(REMOVE_RECURSE
  "CMakeFiles/tool_origami_sim.dir/origami_sim.cpp.o"
  "CMakeFiles/tool_origami_sim.dir/origami_sim.cpp.o.d"
  "origami_sim"
  "origami_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_origami_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
