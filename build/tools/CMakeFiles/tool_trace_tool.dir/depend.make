# Empty dependencies file for tool_trace_tool.
# This may be replaced when dependencies are built.
