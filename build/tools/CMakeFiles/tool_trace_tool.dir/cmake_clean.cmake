file(REMOVE_RECURSE
  "CMakeFiles/tool_trace_tool.dir/trace_tool.cpp.o"
  "CMakeFiles/tool_trace_tool.dir/trace_tool.cpp.o.d"
  "trace_tool"
  "trace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_trace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
