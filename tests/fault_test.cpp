// Tests for the fault-injection subsystem: schedule determinism, retry
// backoff, MDS health windows, network loss sampling, and the replay-level
// integration (failover, restore, never routing to a down MDS).
#include <gtest/gtest.h>

#include <algorithm>

#include "origami/cluster/replay.hpp"
#include "origami/fault/fault.hpp"
#include "origami/fs/live_replay.hpp"
#include "origami/mds/mds_server.hpp"
#include "origami/net/network.hpp"
#include "origami/wl/generators.hpp"

namespace origami {
namespace {

using sim::SimTime;

fault::FaultPlan probabilistic_plan() {
  fault::FaultPlan plan;
  plan.seed = 4242;
  plan.crash_prob = 0.3;
  plan.crash_recovery = sim::millis(200);
  plan.straggler_prob = 0.4;
  plan.straggler_slow = 3.0;
  plan.straggler_duration = sim::millis(100);
  return plan;
}

// ------------------------------------------------------------- fault plan --

TEST(FaultPlan, DefaultIsDisabled) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  fault::FaultInjector inj(plan, 5);
  EXPECT_TRUE(inj.windows_for_epoch(0, 0, sim::seconds(1)).empty());
}

TEST(FaultPlan, AnySourceEnables) {
  fault::FaultPlan plan;
  plan.rpc_loss_prob = 0.01;
  EXPECT_TRUE(plan.enabled());
  plan = fault::FaultPlan{};
  plan.scheduled.push_back({0, 0, sim::millis(1), fault::FaultKind::kCrash, 1.0});
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const auto plan = probabilistic_plan();
  fault::FaultInjector a(plan, 8);
  fault::FaultInjector b(plan, 8);
  const SimTime len = sim::millis(500);
  for (std::uint32_t epoch = 0; epoch < 20; ++epoch) {
    const SimTime start = static_cast<SimTime>(epoch) * len;
    const auto wa = a.windows_for_epoch(epoch, start, len);
    const auto wb = b.windows_for_epoch(epoch, start, len);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i].mds, wb[i].mds);
      EXPECT_EQ(wa[i].from, wb[i].from);
      EXPECT_EQ(wa[i].until, wb[i].until);
      EXPECT_EQ(wa[i].kind, wb[i].kind);
    }
  }
}

TEST(FaultInjector, QueryOrderIndependent) {
  const auto plan = probabilistic_plan();
  fault::FaultInjector inj(plan, 4);
  const SimTime len = sim::millis(500);
  const auto late_first = inj.windows_for_epoch(7, 7 * len, len);
  (void)inj.windows_for_epoch(3, 3 * len, len);
  const auto late_again = inj.windows_for_epoch(7, 7 * len, len);
  ASSERT_EQ(late_first.size(), late_again.size());
  for (std::size_t i = 0; i < late_first.size(); ++i) {
    EXPECT_EQ(late_first[i].from, late_again[i].from);
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  auto plan = probabilistic_plan();
  fault::FaultInjector a(plan, 8);
  plan.seed = 4243;
  fault::FaultInjector b(plan, 8);
  const SimTime len = sim::millis(500);
  std::size_t diffs = 0;
  for (std::uint32_t epoch = 0; epoch < 20; ++epoch) {
    const auto wa = a.windows_for_epoch(epoch, epoch * len, len);
    const auto wb = b.windows_for_epoch(epoch, epoch * len, len);
    if (wa.size() != wb.size()) {
      ++diffs;
      continue;
    }
    for (std::size_t i = 0; i < wa.size(); ++i) {
      if (wa[i].from != wb[i].from || wa[i].mds != wb[i].mds) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0u);
}

TEST(FaultInjector, WindowsFallInsideEpochAndProbabilitiesBite) {
  const auto plan = probabilistic_plan();
  fault::FaultInjector inj(plan, 10);
  const SimTime len = sim::millis(500);
  std::size_t crashes = 0, stragglers = 0, total_epochs = 50;
  for (std::uint32_t epoch = 0; epoch < total_epochs; ++epoch) {
    const SimTime start = static_cast<SimTime>(epoch) * len;
    for (const auto& w : inj.windows_for_epoch(epoch, start, len)) {
      EXPECT_GE(w.from, start);
      EXPECT_LT(w.from, start + len);
      EXPECT_GT(w.until, w.from);
      if (w.kind == fault::FaultKind::kCrash) ++crashes;
      if (w.kind == fault::FaultKind::kStraggler) {
        ++stragglers;
        EXPECT_GE(w.slow_factor, 1.0);
      }
    }
  }
  // 10 MDSs x 50 epochs at p=0.3/0.4: expect well over a hundred of each;
  // be loose, this is a sanity bound, not a statistics test.
  EXPECT_GT(crashes, 50u);
  EXPECT_GT(stragglers, 80u);
}

TEST(FaultInjector, ScheduledWindowsSurface) {
  fault::FaultPlan plan;
  plan.scheduled.push_back(
      {2, sim::millis(750), sim::millis(900), fault::FaultKind::kCrash, 1.0});
  fault::FaultInjector inj(plan, 5);
  const SimTime len = sim::millis(500);
  EXPECT_TRUE(inj.windows_for_epoch(0, 0, len).empty());
  const auto w1 = inj.windows_for_epoch(1, len, len);
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_EQ(w1[0].mds, 2u);
  EXPECT_EQ(w1[0].from, sim::millis(750));
  EXPECT_TRUE(inj.scheduled_down_overlaps(2, sim::millis(800), sim::millis(850)));
  EXPECT_FALSE(inj.scheduled_down_overlaps(2, sim::millis(900), sim::millis(950)));
  EXPECT_FALSE(inj.scheduled_down_overlaps(1, sim::millis(800), sim::millis(850)));
}

// ---------------------------------------------------------------- backoff --

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  fault::RetryPolicy policy;
  policy.backoff_base = sim::micros(100);
  policy.backoff_cap = sim::micros(1000);
  policy.jitter_frac = 0.0;
  common::Xoshiro256 rng(1);
  EXPECT_EQ(policy.backoff_for(1, rng), sim::micros(100));
  EXPECT_EQ(policy.backoff_for(2, rng), sim::micros(200));
  EXPECT_EQ(policy.backoff_for(3, rng), sim::micros(400));
  EXPECT_EQ(policy.backoff_for(4, rng), sim::micros(800));
  EXPECT_EQ(policy.backoff_for(5, rng), sim::micros(1000));   // capped
  EXPECT_EQ(policy.backoff_for(50, rng), sim::micros(1000));  // stays capped
}

TEST(RetryPolicy, JitterStaysInBounds) {
  fault::RetryPolicy policy;
  policy.backoff_base = sim::micros(100);
  policy.backoff_cap = sim::micros(1000);
  policy.jitter_frac = 0.25;
  common::Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const SimTime d = policy.backoff_for(2, rng);  // nominal 200us
    EXPECT_GE(d, sim::micros(150));
    EXPECT_LT(d, sim::micros(250));
  }
}

TEST(RetryPolicy, DeterministicGivenSeed) {
  fault::RetryPolicy policy;
  common::Xoshiro256 a(11), b(11);
  for (std::uint32_t i = 1; i < 20; ++i) {
    EXPECT_EQ(policy.backoff_for(i, a), policy.backoff_for(i, b));
  }
}

// ------------------------------------------------------------- mds health --

TEST(MdsServerFaults, DownWindowDefersService) {
  mds::MdsServer s(0, {});
  s.crash(sim::millis(10), sim::millis(50));
  EXPECT_TRUE(s.is_down(sim::millis(20)));
  EXPECT_FALSE(s.is_down(sim::millis(50)));
  // An arrival mid-outage starts at the recovery instant.
  const SimTime done = s.serve(sim::millis(20), sim::micros(5));
  EXPECT_EQ(done, sim::millis(50) + sim::micros(5));
  EXPECT_EQ(s.earliest_start(sim::millis(60)), sim::millis(60));
  EXPECT_EQ(s.time_down(), sim::millis(40));
}

TEST(MdsServerFaults, DegradedStretchesService) {
  mds::MdsServer s(0, {});
  s.degrade(0, sim::millis(100), 4.0);
  const SimTime done = s.serve(0, sim::micros(10));
  EXPECT_EQ(done, sim::micros(40));
  EXPECT_EQ(s.state(sim::millis(50)), mds::MdsState::kDegraded);
  EXPECT_EQ(s.state(sim::millis(100)), mds::MdsState::kUp);
  EXPECT_EQ(s.time_degraded(), sim::millis(100));
  // After the window, service is normal again.
  const SimTime later = s.serve(sim::millis(200), sim::micros(10));
  EXPECT_EQ(later, sim::millis(200) + sim::micros(10));
}

TEST(MdsServerFaults, HealthyServerUnchanged) {
  mds::MdsServer a(0, {}), b(1, {});
  b.crash(0, 0);          // no-op window
  b.degrade(0, 0, 9.0);   // no-op window
  for (int i = 0; i < 50; ++i) {
    const SimTime arrival = i * sim::micros(3);
    EXPECT_EQ(a.serve(arrival, sim::micros(7)), b.serve(arrival, sim::micros(7)));
  }
  EXPECT_EQ(b.time_down(), 0);
  EXPECT_EQ(b.time_degraded(), 0);
}

// ---------------------------------------------------------------- network --

TEST(NetworkFaults, OneWayCountsRpcs) {
  net::Network n;
  (void)n.one_way(0, 1);
  (void)n.rtt(0, 1);
  (void)n.one_way(2, 2);  // local: free, not a message
  EXPECT_EQ(n.rpc_count(), 2u);
}

TEST(NetworkFaults, DisabledNeverDropsAndJitterUnperturbed) {
  net::NetworkParams p;
  p.seed = 99;
  net::Network plain(p);
  net::Network armed(p);
  armed.enable_faults(0.0, 0.0, 123);  // zero probabilities: still disabled
  EXPECT_FALSE(armed.faults_enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(armed.classify_delivery(), net::Network::Delivery::kOk);
    EXPECT_EQ(plain.one_way(0, 1), armed.one_way(0, 1));
  }
  EXPECT_EQ(armed.lost_count(), 0u);
}

TEST(NetworkFaults, LossRateRoughlyHonored) {
  net::Network n;
  n.enable_faults(0.1, 0.05, 555);
  int lost = 0, corrupted = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto fate = n.classify_delivery();
    lost += fate == net::Network::Delivery::kLost;
    corrupted += fate == net::Network::Delivery::kCorrupted;
  }
  EXPECT_NEAR(static_cast<double>(lost) / trials, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(corrupted) / trials, 0.05, 0.015);
  EXPECT_EQ(n.lost_count(), static_cast<std::uint64_t>(lost));
}

// ------------------------------------------------------------ integration --

cluster::ReplayOptions small_options() {
  cluster::ReplayOptions opt;
  opt.mds_count = 4;
  opt.clients = 16;
  opt.epoch_length = sim::millis(200);
  opt.warmup_epochs = 0;
  return opt;
}

wl::Trace small_trace() {
  wl::TraceRwConfig cfg;
  cfg.ops = 40'000;
  cfg.seed = 17;
  return wl::make_trace_rw(cfg);
}

TEST(ReplayFaults, DisabledPlanMatchesBaselineExactly) {
  const auto trace = small_trace();
  const auto opt = small_options();
  cluster::StaticBalancer a(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::ReplayOptions with_defaults = opt;  // FaultPlan default-disabled
  const auto ra = cluster::replay_trace(trace, opt, a);
  const auto rb = cluster::replay_trace(trace, with_defaults, b);
  EXPECT_EQ(ra.completed_ops, rb.completed_ops);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.total_rpcs, rb.total_rpcs);
  EXPECT_EQ(ra.latency.quantile(0.99), rb.latency.quantile(0.99));
  EXPECT_EQ(rb.faults.retries, 0u);
  EXPECT_EQ(rb.faults.failed_ops, 0u);
  EXPECT_EQ(rb.faults.crashes, 0u);
}

TEST(ReplayFaults, CrashesCauseFailoverRetriesAndCompletion) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  opt.faults.seed = 90;
  opt.faults.crash_prob = 0.10;
  opt.faults.crash_recovery = sim::millis(150);
  opt.faults.rpc_loss_prob = 0.002;
  opt.retry.timeout = sim::millis(1);
  cluster::StaticBalancer balancer(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_GT(r.completed_ops, 0u);
  EXPECT_GT(r.faults.crashes, 0u);
  EXPECT_GT(r.faults.failovers, 0u);
  EXPECT_GT(r.faults.retries, 0u);
  EXPECT_GT(r.faults.time_down, 0);
  // Nearly all operations should survive the outages via retry/failover.
  EXPECT_GT(r.completed_ops, 35'000u);
  // Every issued op is either completed or accounted as failed.
  EXPECT_EQ(r.completed_ops + r.faults.failed_ops, 40'000u);
}

TEST(ReplayFaults, SameFaultSeedIsReproducible) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  opt.faults.crash_prob = 0.05;
  opt.faults.straggler_prob = 0.1;
  opt.faults.rpc_loss_prob = 0.001;
  cluster::StaticBalancer a(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto ra = cluster::replay_trace(trace, opt, a);
  const auto rb = cluster::replay_trace(trace, opt, b);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.faults.retries, rb.faults.retries);
  EXPECT_EQ(ra.faults.crashes, rb.faults.crashes);
  EXPECT_EQ(ra.faults.failed_ops, rb.faults.failed_ops);
  EXPECT_EQ(ra.faults.failovers, rb.faults.failovers);
}

TEST(ReplayFaults, PartitionNeverPointsAtDownMds) {
  // Crash MDS 1 near the end of the run with an outage far beyond the
  // trace: at run end it is still down, so the final ownership map must
  // not contain it — failover moved everything off and nothing came back.
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  fault::FaultWindow w;
  w.mds = 1;
  w.kind = fault::FaultKind::kCrash;
  w.from = sim::millis(300);
  w.until = sim::seconds(3600);
  opt.faults.scheduled.push_back(w);
  cluster::StaticBalancer balancer(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.failovers, 1u);
  EXPECT_GT(r.faults.failover_dirs, 0u);
  EXPECT_EQ(r.faults.restored_dirs, 0u);  // never recovered
  for (std::uint32_t owner : r.final_dir_owner) {
    EXPECT_NE(owner, 1u);
  }
  EXPECT_GT(r.completed_ops, 0u);
}

TEST(ReplayFaults, RecoveryRestoresFragments) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  fault::FaultWindow w;
  w.mds = 2;
  w.kind = fault::FaultKind::kCrash;
  w.from = sim::millis(250);
  w.until = sim::millis(450);
  opt.faults.scheduled.push_back(w);
  cluster::StaticBalancer balancer(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_GT(r.faults.failover_dirs, 0u);
  // Static balancer never re-migrates, so every fragment comes home.
  EXPECT_EQ(r.faults.restored_dirs, r.faults.failover_dirs);
  // After recovery MDS 2 owns fragments again.
  const bool owns_again =
      std::any_of(r.final_dir_owner.begin(), r.final_dir_owner.end(),
                  [](std::uint32_t o) { return o == 2u; });
  EXPECT_TRUE(owns_again);
}

TEST(ReplayFaults, StragglersInflateTailLatency) {
  const auto trace = small_trace();
  cluster::ReplayOptions clean = small_options();
  cluster::ReplayOptions slow = small_options();
  slow.faults.straggler_prob = 0.5;
  slow.faults.straggler_slow = 6.0;
  slow.faults.straggler_duration = sim::millis(120);
  cluster::StaticBalancer a(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto rc = cluster::replay_trace(trace, clean, a);
  const auto rs = cluster::replay_trace(trace, slow, b);
  EXPECT_GT(rs.faults.time_degraded, 0);
  EXPECT_GT(rs.p99_latency_us, rc.p99_latency_us);
}

// ------------------------------------------------------- live-mode faults --
// The same fault layers (injector sampling, failover, fencing, retries) run
// against the real OrigamiFS service on its cost-model virtual clock
// (nanoseconds): window bounds and recovery durations are virtual time, and
// crashes/recoveries fire at the engine's sync points. A 20k-op trace with
// every fragment born on shard 0 runs ~3–4 virtual seconds.

wl::Trace live_trace(std::uint64_t ops = 20'000) {
  wl::TraceRwConfig cfg;
  cfg.ops = ops;
  cfg.projects = 4;
  cfg.modules_per_project = 3;
  cfg.sources_per_module = 8;
  cfg.headers_shared = 40;
  cfg.seed = 23;
  return wl::make_trace_rw(cfg);
}

TEST(LiveReplayFaults, DisabledPlanMatchesLegacyApiExactly) {
  const auto trace = live_trace();
  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;
  fs::OrigamiFs legacy_fs(fopt);
  fs::OrigamiFs armed_fs(fopt);
  const auto legacy = fs::replay_on_live(trace, legacy_fs, 5'000);
  const auto via_options =
      fs::replay_on_live(trace, armed_fs, fs::LiveReplayOptions{});
  EXPECT_EQ(via_options.executed, legacy.executed);
  EXPECT_EQ(via_options.failed, legacy.failed);
  EXPECT_EQ(via_options.faults.crashes, 0u);
  EXPECT_EQ(via_options.faults.retries, 0u);
  EXPECT_EQ(via_options.faults.journal_records, 0u);
}

TEST(LiveReplayFaults, CrashMidEpochFailsOverThenRecoveryRestores) {
  const auto trace = live_trace();
  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;
  fs::OrigamiFs fsys(fopt);

  // Without a balancer every fragment is born on shard 0: crash it from
  // 900ms to 2.1s of virtual time (well inside the ~3.5s makespan).
  fs::LiveReplayOptions opt;
  opt.faults.scheduled.push_back(
      {0, sim::millis(900), sim::millis(2'100), fault::FaultKind::kCrash, 1.0});
  const auto stats = fs::replay_on_live(trace, fsys, opt);

  EXPECT_EQ(stats.faults.crashes, 1u);
  EXPECT_GT(stats.faults.failovers, 0u);
  EXPECT_GT(stats.faults.failover_dirs, 0u);
  // The crash fires at the first sync point past the window start, so the
  // remaining outage is positive but no longer than the full window.
  EXPECT_GT(stats.faults.time_down, 0);
  EXPECT_LE(stats.faults.time_down, sim::millis(1'200));
  EXPECT_GT(stats.makespan, sim::millis(2'100));
  // The crashed shard's journal was torn + replayed by the survivors...
  EXPECT_EQ(stats.faults.journal_replays, 1u);
  EXPECT_GT(stats.faults.torn_tail_truncations, 0u);
  EXPECT_GT(stats.faults.journal_records, 0u);
  // ...and on recovery the parked fragments came home.
  EXPECT_EQ(stats.faults.restored_dirs, stats.faults.failover_dirs);
  EXPECT_EQ(stats.executed, trace.ops.size());
  EXPECT_EQ(stats.failed, 0u);
}

TEST(LiveReplayFaults, FencingBouncesStaleRoutesAfterFailover) {
  const auto trace = live_trace();
  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;

  fs::LiveReplayOptions fenced;
  fenced.faults.scheduled.push_back(
      {0, sim::millis(900), sim::millis(2'100), fault::FaultKind::kCrash, 1.0});
  fenced.recovery.fencing = true;
  fs::OrigamiFs fs_a(fopt);
  const auto with_fencing = fs::replay_on_live(trace, fs_a, fenced);

  fs::LiveReplayOptions unfenced = fenced;
  unfenced.recovery.fencing = false;
  fs::OrigamiFs fs_b(fopt);
  const auto without = fs::replay_on_live(trace, fs_b, unfenced);

  // Failover + restore changed ownership epochs under cached client routes:
  // every stale route is bounced exactly once per epoch change.
  EXPECT_GT(with_fencing.faults.fenced_rejections, 0u);
  EXPECT_EQ(without.faults.fenced_rejections, 0u);
  EXPECT_EQ(with_fencing.executed, without.executed);
}

TEST(LiveReplayFaults, RpcLossRunsBoundedRetryLoop) {
  const auto trace = live_trace();
  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;
  fs::OrigamiFs fsys(fopt);

  fs::LiveReplayOptions opt;
  opt.faults.seed = 77;
  opt.faults.rpc_loss_prob = 0.02;
  opt.retry.max_retries = 5;
  const auto stats = fs::replay_on_live(trace, fsys, opt);

  EXPECT_GT(stats.faults.rpcs_lost, 0u);
  EXPECT_GT(stats.faults.timeouts, 0u);
  EXPECT_GT(stats.faults.retries, 0u);
  // At p=0.02 with 5 retries, abandonment needs six straight losses: none
  // expected in 20k ops, and every op is accounted exactly once.
  EXPECT_EQ(stats.executed + stats.faults.failed_ops, trace.ops.size());
  EXPECT_GT(stats.executed, trace.ops.size() - 5);
}

TEST(LiveReplayFaults, StragglersStretchTailLatencies) {
  const auto trace = live_trace();
  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;

  fs::LiveReplayOptions clean;
  fs::OrigamiFs fs_clean(fopt);
  const auto rc = fs::replay_on_live(trace, fs_clean, clean);

  fs::LiveReplayOptions slow;
  slow.faults.seed = 7;
  slow.faults.straggler_prob = 0.6;
  slow.faults.straggler_slow = 8.0;
  slow.faults.straggler_duration = sim::millis(250);
  fs::OrigamiFs fs_slow(fopt);
  const auto rs = fs::replay_on_live(trace, fs_slow, slow);

  // The straggler windows multiply service times on the virtual clock, so
  // both the makespan and the latency tail move; the namespace outcome and
  // executed counts stay identical.
  EXPECT_GT(rs.faults.time_degraded, 0);
  EXPECT_GT(rs.makespan, rc.makespan);
  EXPECT_GT(rs.latency.quantile(0.99), rc.latency.quantile(0.99));
  EXPECT_EQ(rs.executed, rc.executed);
  EXPECT_EQ(rs.shard_ops, rc.shard_ops);
}

TEST(LiveReplayFaults, SameSeedIsReproducible) {
  const auto trace = live_trace();
  fs::OrigamiFs::Options fopt;
  fopt.shards = 4;

  fs::LiveReplayOptions opt;
  opt.faults.seed = 91;
  opt.faults.crash_prob = 0.2;
  opt.faults.crash_recovery = sim::millis(400);
  opt.faults.rpc_loss_prob = 0.005;
  opt.epoch_ops = 4'000;

  fs::OrigamiFs fs_a(fopt);
  fs::OrigamiFs fs_b(fopt);
  const auto ra = fs::replay_on_live(trace, fs_a, opt);
  const auto rb = fs::replay_on_live(trace, fs_b, opt);
  EXPECT_EQ(ra.executed, rb.executed);
  EXPECT_EQ(ra.shard_ops, rb.shard_ops);
  EXPECT_EQ(ra.faults.crashes, rb.faults.crashes);
  EXPECT_EQ(ra.faults.failover_dirs, rb.faults.failover_dirs);
  EXPECT_EQ(ra.faults.retries, rb.faults.retries);
  EXPECT_EQ(ra.faults.fenced_rejections, rb.faults.fenced_rejections);
  EXPECT_EQ(ra.faults.journal_records, rb.faults.journal_records);
}

}  // namespace
}  // namespace origami
