// Unit + property tests for the fragmented-LSM key-value store
// (origami::kv): bloom filters, memtable, sorted runs, WAL, full Db.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "origami/common/rng.hpp"
#include "origami/kv/bloom.hpp"
#include "origami/kv/db.hpp"
#include "origami/kv/memtable.hpp"
#include "origami/kv/sorted_run.hpp"
#include "origami/kv/wal.hpp"

namespace origami::kv {
namespace {

// ----------------------------------------------------------------- Bloom --

TEST(Bloom, NoFalseNegatives) {
  BloomFilter bloom(1000, 10);
  for (int i = 0; i < 1000; ++i) bloom.add("key" + std::to_string(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.may_contain("key" + std::to_string(i)));
  }
}

TEST(Bloom, LowFalsePositiveRate) {
  BloomFilter bloom(10000, 10);
  for (int i = 0; i < 10000; ++i) bloom.add("member" + std::to_string(i));
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom.may_contain("absent" + std::to_string(i))) ++fp;
  }
  // 10 bits/key gives ~1% FPR; allow generous slack.
  EXPECT_LT(fp, 400);
}

TEST(Bloom, EmptyMatchesNothing) {
  BloomFilter bloom(0, 10);
  EXPECT_FALSE(bloom.may_contain("anything"));
}

// -------------------------------------------------------------- MemTable --

TEST(MemTable, PutGetOverwrite) {
  MemTable mt;
  mt.put("a", "1", 1);
  mt.put("b", "2", 2);
  auto e = mt.get("a");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->value, "1");
  mt.put("a", "updated", 3);
  e = mt.get("a");
  EXPECT_EQ(e->value, "updated");
  EXPECT_EQ(e->seqno, 3u);
  EXPECT_EQ(mt.entry_count(), 2u);
}

TEST(MemTable, TombstoneShadowsValue) {
  MemTable mt;
  mt.put("a", "1", 1);
  mt.del("a", 2);
  auto e = mt.get("a");
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->tombstone);
}

TEST(MemTable, ScanRangeOrdered) {
  MemTable mt;
  mt.put("c", "3", 1);
  mt.put("a", "1", 2);
  mt.put("b", "2", 3);
  mt.put("d", "4", 4);
  std::string seen;
  mt.scan("a", "d", [&](std::string_view k, const Entry&) {
    seen += k;
    return true;
  });
  EXPECT_EQ(seen, "abc");
}

TEST(MemTable, ByteAccountingGrowsAndTracksOverwrite) {
  MemTable mt;
  EXPECT_EQ(mt.approximate_bytes(), 0u);
  mt.put("key", "0123456789", 1);
  const auto bytes = mt.approximate_bytes();
  EXPECT_GT(bytes, 10u);
  mt.put("key", "01234", 2);
  EXPECT_EQ(mt.approximate_bytes(), bytes - 5);
}

// ------------------------------------------------------------- SortedRun --

std::vector<std::pair<std::string, Entry>> make_entries(
    std::initializer_list<std::pair<const char*, const char*>> kvs,
    std::uint64_t seq_start = 1) {
  std::vector<std::pair<std::string, Entry>> out;
  std::uint64_t seq = seq_start;
  for (const auto& [k, v] : kvs) {
    out.emplace_back(k, Entry{v, seq++, false});
  }
  return out;
}

TEST(SortedRun, GetHitAndMiss) {
  SortedRun run(make_entries({{"a", "1"}, {"c", "3"}, {"e", "5"}}));
  ASSERT_TRUE(run.get("c").has_value());
  EXPECT_EQ(run.get("c")->value, "3");
  EXPECT_FALSE(run.get("b").has_value());
  EXPECT_FALSE(run.get("z").has_value());
  EXPECT_EQ(run.min_key(), "a");
  EXPECT_EQ(run.max_key(), "e");
}

TEST(SortedRun, ScanHonorsBounds) {
  SortedRun run(make_entries({{"a", "1"}, {"b", "2"}, {"c", "3"}, {"d", "4"}}));
  std::string seen;
  run.scan("b", "d", [&](std::string_view k, const Entry&) {
    seen += k;
    return true;
  });
  EXPECT_EQ(seen, "bc");
  seen.clear();
  run.scan({}, {}, [&](std::string_view k, const Entry&) {
    seen += k;
    return k != "c";  // early stop
  });
  EXPECT_EQ(seen, "abc");
}

TEST(MergeRuns, NewestWinsAndTombstonesDrop) {
  auto old_run = std::make_shared<SortedRun>(
      make_entries({{"a", "old"}, {"b", "old"}, {"c", "old"}}, 1));
  std::vector<std::pair<std::string, Entry>> newer;
  newer.emplace_back("a", Entry{"new", 10, false});
  newer.emplace_back("b", Entry{"", 11, true});  // tombstone
  auto new_run = std::make_shared<SortedRun>(std::move(newer));

  auto merged = merge_runs({new_run, old_run}, /*drop_tombstones=*/false);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].second.value, "new");
  EXPECT_TRUE(merged[1].second.tombstone);
  EXPECT_EQ(merged[2].second.value, "old");

  auto dropped = merge_runs({new_run, old_run}, /*drop_tombstones=*/true);
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_EQ(dropped[0].first, "a");
  EXPECT_EQ(dropped[1].first, "c");
}

// ------------------------------------------------------------------- WAL --

TEST(Wal, InMemoryRoundtrip) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.append(WalRecordType::kPut, "k1", "v1", 1).is_ok());
  ASSERT_TRUE(wal.append(WalRecordType::kDelete, "k2", "", 2).is_ok());
  int count = 0;
  auto status = wal.replay([&](WalRecordType type, std::string_view k,
                               std::string_view v, std::uint64_t seq) {
    if (count == 0) {
      EXPECT_EQ(type, WalRecordType::kPut);
      EXPECT_EQ(k, "k1");
      EXPECT_EQ(v, "v1");
      EXPECT_EQ(seq, 1u);
    } else {
      EXPECT_EQ(type, WalRecordType::kDelete);
      EXPECT_EQ(k, "k2");
    }
    ++count;
  });
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(count, 2);
}

TEST(Wal, FileBackedSurvivesReopen) {
  const std::string path = ::testing::TempDir() + "/origami_wal_test.log";
  std::remove(path.c_str());
  {
    WriteAheadLog wal(path);
    ASSERT_TRUE(wal.append(WalRecordType::kPut, "persist", "yes", 5).is_ok());
  }
  WriteAheadLog reopened(path);
  int count = 0;
  auto status = reopened.replay([&](WalRecordType, std::string_view k,
                                    std::string_view v, std::uint64_t) {
    EXPECT_EQ(k, "persist");
    EXPECT_EQ(v, "yes");
    ++count;
  });
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(count, 1);
  std::remove(path.c_str());
}

TEST(Wal, CorruptRecordTreatedAsTornTailNotError) {
  const std::string path = ::testing::TempDir() + "/origami_wal_corrupt.log";
  std::remove(path.c_str());
  {
    WriteAheadLog wal(path);
    ASSERT_TRUE(wal.append(WalRecordType::kPut, "k", "v", 1).is_ok());
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(21);  // first payload byte (the key), inside the record
    f.put('X');
  }
  // The only record fails its checksum: decoding stops there, nothing is
  // delivered, and the scan still succeeds (torn write, not hard error).
  int replayed = 0;
  WalReplayStats stats;
  auto status = WriteAheadLog::replay_file(
      path,
      [&](WalRecordType, std::string_view, std::string_view, std::uint64_t) {
        ++replayed;
      },
      &stats);
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(replayed, 0);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_GT(stats.dropped_bytes, 0u);
  std::remove(path.c_str());
}

TEST(Wal, TornTailTruncatedAndLaterAppendsSurvive) {
  // A crash mid-append leaves garbage at the tail. Replay must deliver the
  // valid prefix, truncate the garbage, and leave the log clean enough that
  // post-recovery appends replay correctly afterwards.
  WriteAheadLog wal;
  ASSERT_TRUE(wal.append(WalRecordType::kPut, "a", "1", 1).is_ok());
  ASSERT_TRUE(wal.append(WalRecordType::kPut, "b", "2", 2).is_ok());
  const std::size_t clean_size = wal.byte_size();
  wal.append_raw("\x7f\x7f\x7f half a record the writer died inside");
  ASSERT_GT(wal.byte_size(), clean_size);

  WalReplayStats stats;
  int replayed = 0;
  auto status = wal.replay(
      [&](WalRecordType, std::string_view, std::string_view, std::uint64_t) {
        ++replayed;
      },
      &stats);
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(replayed, 2);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(wal.byte_size(), clean_size);  // tail dropped

  // The log is writable again and a second replay sees old + new records.
  ASSERT_TRUE(wal.append(WalRecordType::kPut, "c", "3", 3).is_ok());
  WalReplayStats stats2;
  std::vector<std::string> keys;
  ASSERT_TRUE(wal.replay(
                     [&](WalRecordType, std::string_view k, std::string_view,
                         std::uint64_t) { keys.emplace_back(k); },
                     &stats2)
                  .is_ok());
  EXPECT_FALSE(stats2.torn_tail);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[2], "c");
}

TEST(Wal, FileBackedTornTailTruncatedOnDisk) {
  const std::string path = ::testing::TempDir() + "/origami_wal_torn.log";
  std::remove(path.c_str());
  {
    WriteAheadLog wal(path);
    ASSERT_TRUE(wal.append(WalRecordType::kPut, "k", "v", 7).is_ok());
    wal.append_raw("torn");
  }
  WriteAheadLog reopened(path);
  WalReplayStats stats;
  int replayed = 0;
  ASSERT_TRUE(reopened
                  .replay(
                      [&](WalRecordType, std::string_view, std::string_view,
                          std::uint64_t) { ++replayed; },
                      &stats)
                  .is_ok());
  EXPECT_EQ(replayed, 1);
  EXPECT_TRUE(stats.torn_tail);
  // The truncation was persisted: a fresh reopen sees a clean log.
  WriteAheadLog again(path);
  WalReplayStats stats2;
  ASSERT_TRUE(again
                  .replay([](WalRecordType, std::string_view, std::string_view,
                             std::uint64_t) {},
                          &stats2)
                  .is_ok());
  EXPECT_EQ(stats2.records, 1u);
  EXPECT_FALSE(stats2.torn_tail);
  std::remove(path.c_str());
}

TEST(Wal, TornTailPropertyEveryTruncationOffset) {
  // Property: for a crash that truncates the log at ANY byte offset inside
  // the final record, replay must deliver exactly the durable prefix — no
  // crash, no phantom record, no record invented from the severed bytes —
  // and leave the log clean enough that appends work again.
  const std::string full_path =
      ::testing::TempDir() + "/origami_wal_prop_full.log";
  const std::string cut_path =
      ::testing::TempDir() + "/origami_wal_prop_cut.log";
  std::remove(full_path.c_str());

  std::size_t prefix_end = 0;  // byte size of the first 4 records
  {
    WriteAheadLog wal(full_path);
    // Varied key/value shapes, including an empty value and a long value,
    // so the truncation sweep crosses every header field and body region.
    ASSERT_TRUE(wal.append(WalRecordType::kPut, "k1", "v1", 1).is_ok());
    ASSERT_TRUE(wal.append(WalRecordType::kDelete, "key-two", "", 2).is_ok());
    ASSERT_TRUE(wal.append(WalRecordType::kPut, "k3", std::string(64, 'x'), 3)
                    .is_ok());
    ASSERT_TRUE(wal.append(WalRecordType::kPut, "", "empty-key", 4).is_ok());
    prefix_end = wal.byte_size();
    ASSERT_TRUE(
        wal.append(WalRecordType::kPut, "final-key", "final-value", 5).is_ok());
  }
  std::string bytes;
  {
    std::ifstream in(full_path, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(in));
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>{});
  }
  ASSERT_GT(bytes.size(), prefix_end);

  for (std::size_t cut = prefix_end; cut <= bytes.size(); ++cut) {
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    WriteAheadLog wal(cut_path);
    WalReplayStats stats;
    std::vector<std::uint64_t> seqnos;
    ASSERT_TRUE(wal.replay(
                       [&](WalRecordType, std::string_view, std::string_view,
                           std::uint64_t seq) { seqnos.push_back(seq); },
                       &stats)
                    .is_ok())
        << "cut at byte " << cut;
    const bool whole = cut == prefix_end || cut == bytes.size();
    const std::vector<std::uint64_t> expect =
        cut == bytes.size() ? std::vector<std::uint64_t>{1, 2, 3, 4, 5}
                            : std::vector<std::uint64_t>{1, 2, 3, 4};
    EXPECT_EQ(seqnos, expect) << "cut at byte " << cut;
    EXPECT_EQ(stats.torn_tail, !whole) << "cut at byte " << cut;
    if (!whole) {
      EXPECT_EQ(stats.dropped_bytes, cut - prefix_end)
          << "cut at byte " << cut;
    }
    // The truncation left a writable log: one more append replays cleanly
    // right behind the recovered prefix.
    ASSERT_TRUE(wal.append(WalRecordType::kPut, "post", "crash", 9).is_ok());
    WalReplayStats stats2;
    std::vector<std::uint64_t> after;
    ASSERT_TRUE(wal.replay(
                       [&](WalRecordType, std::string_view, std::string_view,
                           std::uint64_t seq) { after.push_back(seq); },
                       &stats2)
                    .is_ok());
    EXPECT_FALSE(stats2.torn_tail) << "cut at byte " << cut;
    ASSERT_FALSE(after.empty());
    EXPECT_EQ(after.back(), 9u) << "cut at byte " << cut;
    EXPECT_EQ(after.size(), expect.size() + 1) << "cut at byte " << cut;
  }
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

TEST(Wal, ResetClears) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.append(WalRecordType::kPut, "k", "v", 1).is_ok());
  ASSERT_TRUE(wal.reset().is_ok());
  EXPECT_EQ(wal.byte_size(), 0u);
}

// -------------------------------------------------------------------- Db --

TEST(Db, BasicCrud) {
  Db db;
  ASSERT_TRUE(db.put("alpha", "1").is_ok());
  ASSERT_TRUE(db.put("beta", "2").is_ok());
  auto r = db.get("alpha");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), "1");
  EXPECT_FALSE(db.get("gamma").is_ok());
  ASSERT_TRUE(db.del("alpha").is_ok());
  EXPECT_FALSE(db.get("alpha").is_ok());
  EXPECT_EQ(db.count_live(), 1u);
}

TEST(Db, GetAfterFlushAndCompaction) {
  DbOptions opts;
  opts.memtable_bytes = 512;  // force frequent flushes
  opts.runs_per_guard = 2;    // force compactions
  Db db(opts);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(
        db.put("key" + std::to_string(i), "value" + std::to_string(i)).is_ok());
  }
  EXPECT_GT(db.stats().memtable_flushes, 0u);
  EXPECT_GT(db.stats().guard_compactions, 0u);
  for (int i = 0; i < 500; ++i) {
    auto r = db.get("key" + std::to_string(i));
    ASSERT_TRUE(r.is_ok()) << i;
    EXPECT_EQ(r.value(), "value" + std::to_string(i));
  }
}

TEST(Db, OverwriteAcrossLevels) {
  DbOptions opts;
  opts.memtable_bytes = 256;
  opts.runs_per_guard = 2;
  Db db(opts);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(db.put("k" + std::to_string(i),
                         "r" + std::to_string(round))
                      .is_ok());
    }
  }
  for (int i = 0; i < 60; ++i) {
    auto r = db.get("k" + std::to_string(i));
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), "r5");
  }
}

TEST(Db, DeleteShadowsOlderLevels) {
  DbOptions opts;
  opts.memtable_bytes = 256;
  Db db(opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.put("k" + std::to_string(i), "v").is_ok());
  }
  ASSERT_TRUE(db.flush().is_ok());
  ASSERT_TRUE(db.del("k50").is_ok());
  EXPECT_FALSE(db.get("k50").is_ok());
  ASSERT_TRUE(db.flush().is_ok());
  EXPECT_FALSE(db.get("k50").is_ok());
}

TEST(Db, ScanMergesAllSources) {
  DbOptions opts;
  opts.memtable_bytes = 1u << 20;
  Db db(opts);
  ASSERT_TRUE(db.put("a", "1").is_ok());
  ASSERT_TRUE(db.flush().is_ok());
  ASSERT_TRUE(db.put("b", "2").is_ok());
  ASSERT_TRUE(db.flush().is_ok());
  ASSERT_TRUE(db.put("c", "3").is_ok());
  ASSERT_TRUE(db.put("a", "1-new").is_ok());  // shadows flushed value
  std::vector<std::string> keys;
  std::vector<std::string> values;
  db.scan({}, {}, [&](std::string_view k, std::string_view v) {
    keys.emplace_back(k);
    values.emplace_back(v);
    return true;
  });
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(values[0], "1-new");
  EXPECT_EQ(keys[2], "c");
}

TEST(Db, ScanPrefix) {
  Db db;
  ASSERT_TRUE(db.put("dir1/fileA", "a").is_ok());
  ASSERT_TRUE(db.put("dir1/fileB", "b").is_ok());
  ASSERT_TRUE(db.put("dir2/fileC", "c").is_ok());
  int n = 0;
  db.scan_prefix("dir1/", [&](std::string_view k, std::string_view) {
    EXPECT_TRUE(k.starts_with("dir1/"));
    ++n;
    return true;
  });
  EXPECT_EQ(n, 2);
}

TEST(Db, ScanPrefixWithHighBytes) {
  Db db;
  std::string prefix = "p";
  prefix.push_back(static_cast<char>(0xff));
  ASSERT_TRUE(db.put(prefix + "x", "1").is_ok());
  ASSERT_TRUE(db.put("q", "2").is_ok());
  int n = 0;
  db.scan_prefix(prefix, [&](std::string_view, std::string_view) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1);
}

TEST(Db, RecoverFromWalFile) {
  const std::string path = ::testing::TempDir() + "/origami_db_recover.wal";
  std::remove(path.c_str());
  DbOptions opts;
  opts.wal_path = path;
  {
    Db db(opts);
    ASSERT_TRUE(db.put("survives", "crash").is_ok());
    ASSERT_TRUE(db.del("phantom").is_ok());
    // No flush: data only in WAL + memtable; simulate crash by dropping db.
  }
  Db recovered(opts);
  ASSERT_TRUE(recovered.recover().is_ok());
  auto r = recovered.get("survives");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), "crash");
  EXPECT_FALSE(recovered.get("phantom").is_ok());
  std::remove(path.c_str());
}

TEST(Db, StatsCount) {
  Db db;
  ASSERT_TRUE(db.put("a", "1").is_ok());
  ASSERT_TRUE(db.put("b", "2").is_ok());
  (void)db.get("a");
  (void)db.get("missing");
  ASSERT_TRUE(db.del("b").is_ok());
  const DbStats s = db.stats();
  EXPECT_EQ(s.puts, 2u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.deletes, 1u);
}

// Property test: the Db must agree with std::map under random workloads
// across a range of compaction-pressure configurations.
struct FuzzConfig {
  std::uint64_t seed;
  std::size_t memtable_bytes;
  std::size_t runs_per_guard;
};

class DbFuzz : public ::testing::TestWithParam<FuzzConfig> {};

TEST_P(DbFuzz, MatchesReferenceMap) {
  const FuzzConfig cfg = GetParam();
  DbOptions opts;
  opts.memtable_bytes = cfg.memtable_bytes;
  opts.runs_per_guard = cfg.runs_per_guard;
  Db db(opts);
  std::map<std::string, std::string> ref;
  common::Xoshiro256 rng(cfg.seed);

  for (int step = 0; step < 4000; ++step) {
    const std::string key = "k" + std::to_string(rng.uniform(300));
    const double roll = rng.uniform_double();
    if (roll < 0.55) {
      const std::string value = "v" + std::to_string(rng.uniform(100000));
      ASSERT_TRUE(db.put(key, value).is_ok());
      ref[key] = value;
    } else if (roll < 0.8) {
      ASSERT_TRUE(db.del(key).is_ok());
      ref.erase(key);
    } else {
      auto r = db.get(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_FALSE(r.is_ok()) << key;
      } else {
        ASSERT_TRUE(r.is_ok()) << key;
        EXPECT_EQ(r.value(), it->second);
      }
    }
  }
  // Final full comparison through scan.
  std::map<std::string, std::string> scanned;
  db.scan({}, {}, [&](std::string_view k, std::string_view v) {
    scanned.emplace(std::string(k), std::string(v));
    return true;
  });
  EXPECT_EQ(scanned, ref);
  EXPECT_EQ(db.count_live(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    Pressure, DbFuzz,
    ::testing::Values(FuzzConfig{1, 1u << 20, 4},   // rare flushes
                      FuzzConfig{2, 2048, 4},       // frequent flushes
                      FuzzConfig{3, 512, 2},        // heavy compaction
                      FuzzConfig{4, 256, 1},        // pathological churn
                      FuzzConfig{5, 4096, 8}));

}  // namespace
}  // namespace origami::kv
