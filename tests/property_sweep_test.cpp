// Parameterised property sweeps across substrates: Eq. 2 identities for
// every op type, random-tree DirTree invariants, histogram-vs-exact
// quantiles, and partition-map conservation under random migrations.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "origami/common/histogram.hpp"
#include "origami/common/rng.hpp"
#include "origami/cost/cost_model.hpp"
#include "origami/fsns/dir_tree.hpp"
#include "origami/mds/partition.hpp"

namespace origami {
namespace {

// ------------------------------------------------------- Eq. 2 identities --

class CostSweep : public ::testing::TestWithParam<fsns::OpType> {};

TEST_P(CostSweep, Eq2StructureHoldsForEveryOpType) {
  const fsns::OpType op = GetParam();
  cost::CostModel m;
  const auto& p = m.params();

  // Baseline: k and m enter linearly through T_inode (+T_rpc per partition).
  const auto base = m.t_meta(op, 3, 1, 0, false);
  EXPECT_EQ(m.t_meta(op, 4, 1, 0, false) - base, p.t_inode);
  EXPECT_EQ(m.t_meta(op, 3, 2, 0, false) - base, p.t_inode + p.t_rpc_handle);

  // Surcharges apply only to their own class.
  const auto spread = m.t_meta(op, 3, 1, 2, false) - base;
  const auto coor = m.t_meta(op, 3, 1, 0, true) - base;
  switch (fsns::classify(op)) {
    case fsns::OpClass::kLsdir:
      EXPECT_EQ(spread, 2 * p.rtt);
      EXPECT_EQ(coor, 0);
      break;
    case fsns::OpClass::kNsMutation:
      EXPECT_EQ(spread, 0);
      EXPECT_EQ(coor, p.t_coor);
      break;
    case fsns::OpClass::kOther:
      EXPECT_EQ(spread, 0);
      EXPECT_EQ(coor, 0);
      break;
  }

  // Eq. 1: network term is m * RTT; total is the sum of the parts.
  const auto b = m.rct(op, 5, 3, 0, false);
  EXPECT_EQ(b.network, 3 * p.rtt);
  EXPECT_EQ(b.total(), b.t_meta + b.network);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, CostSweep,
    ::testing::Values(fsns::OpType::kStat, fsns::OpType::kOpen,
                      fsns::OpType::kReaddir, fsns::OpType::kCreate,
                      fsns::OpType::kMkdir, fsns::OpType::kUnlink,
                      fsns::OpType::kRmdir, fsns::OpType::kRename,
                      fsns::OpType::kSetattr),
    [](const ::testing::TestParamInfo<fsns::OpType>& param_info) {
      return std::string(fsns::to_string(param_info.param));
    });

// --------------------------------------------------- random tree invariants --

class RandomTree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTree, StructuralInvariants) {
  common::Xoshiro256 rng(GetParam());
  fsns::DirTree tree;
  std::vector<fsns::NodeId> dirs{fsns::kRootNode};
  for (int i = 0; i < 2'000; ++i) {
    const fsns::NodeId parent = dirs[rng.uniform(dirs.size())];
    if (rng.chance(0.3)) {
      dirs.push_back(tree.add_dir(parent, "d" + std::to_string(i)));
    } else {
      tree.add_file(parent, "f" + std::to_string(i));
    }
  }
  tree.finalize();

  EXPECT_EQ(tree.dir_count() + tree.file_count(), tree.size());

  // Subtree sizes: root covers everything; each node's subtree equals
  // 1 + sum over children.
  EXPECT_EQ(tree.node(fsns::kRootNode).subtree_nodes, tree.size());
  for (fsns::NodeId d : dirs) {
    std::uint32_t sum = 1;
    for (fsns::NodeId c : tree.node(d).children) {
      sum += tree.node(c).subtree_nodes;
    }
    EXPECT_EQ(tree.node(d).subtree_nodes, sum);
  }

  // visit_subtree visits exactly subtree_nodes nodes, all within subtree.
  const fsns::NodeId probe = dirs[rng.uniform(dirs.size())];
  std::size_t visited = 0;
  tree.visit_subtree(probe, [&](fsns::NodeId id) {
    ++visited;
    EXPECT_TRUE(tree.in_subtree(id, probe));
  });
  EXPECT_EQ(visited, tree.node(probe).subtree_nodes);

  // ancestors(id) is consistent with depth and parent links.
  for (int i = 0; i < 50; ++i) {
    const auto id = static_cast<fsns::NodeId>(rng.uniform(tree.size()));
    const auto chain = tree.ancestors(id);
    EXPECT_EQ(chain.size(), tree.depth(id) + 1);
    EXPECT_EQ(chain.front(), fsns::kRootNode);
    EXPECT_EQ(chain.back(), id);
    for (std::size_t j = 1; j < chain.size(); ++j) {
      EXPECT_EQ(tree.parent(chain[j]), chain[j - 1]);
    }
  }
}

TEST_P(RandomTree, PartitionConservationUnderRandomMigrations) {
  common::Xoshiro256 rng(GetParam() ^ 0xabcdef);
  fsns::DirTree tree;
  std::vector<fsns::NodeId> dirs{fsns::kRootNode};
  for (int i = 0; i < 800; ++i) {
    const fsns::NodeId parent = dirs[rng.uniform(dirs.size())];
    if (rng.chance(0.4)) {
      dirs.push_back(tree.add_dir(parent, "d" + std::to_string(i)));
    } else {
      tree.add_file(parent, "f" + std::to_string(i));
    }
  }
  tree.finalize();

  constexpr std::uint32_t kMds = 4;
  mds::PartitionMap map(tree, kMds);
  for (int step = 0; step < 200; ++step) {
    const fsns::NodeId subtree = dirs[rng.uniform(dirs.size())];
    const auto from = map.dir_owner(subtree);
    const auto to = static_cast<cost::MdsId>(rng.uniform(kMds));
    map.migrate(subtree, from, to);

    // Invariant 1: inode counts always sum to the namespace size.
    std::uint64_t total = 0;
    for (auto c : map.inode_counts()) total += c;
    ASSERT_EQ(total, tree.size());
    // Invariant 2: the migrated root now belongs to `to`.
    if (from != to) {
      ASSERT_EQ(map.dir_owner(subtree), to);
    }
  }
  // Invariant 3: recomputing counts from scratch matches the increments.
  std::vector<std::uint64_t> recount(kMds, 0);
  for (fsns::NodeId id = 0; id < tree.size(); ++id) {
    recount[map.node_owner(id)] += 1;
  }
  for (std::uint32_t m = 0; m < kMds; ++m) {
    EXPECT_EQ(recount[m], map.inode_counts()[m]) << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTree,
                         ::testing::Values(11, 22, 33, 44));

// ----------------------------------------------- histogram quantile fuzz --

class HistogramFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramFuzz, QuantilesTrackExactWithinRelativeError) {
  common::Xoshiro256 rng(GetParam());
  common::LatencyHistogram hist;
  std::vector<std::uint64_t> values;
  // Mixed distribution: uniform + heavy tail.
  for (int i = 0; i < 50'000; ++i) {
    std::uint64_t v;
    if (rng.chance(0.9)) {
      v = 100 + rng.uniform(10'000);
    } else {
      v = 100'000 + rng.uniform(10'000'000);
    }
    values.push_back(v);
    hist.add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const auto exact = values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))];
    const auto approx = hist.quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05 + 2.0)
        << "q=" << q;
  }
  EXPECT_EQ(hist.min(), values.front());
  EXPECT_EQ(hist.max(), values.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramFuzz, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace origami
