// Tests for the paper's core algorithmic contribution: the analytic window
// evaluator, the subtree overhead model, Algorithm 1 (Meta-OPT) and the
// Theorem-1 sub-optimality bound.
#include <gtest/gtest.h>

#include "origami/common/rng.hpp"
#include "origami/core/meta_opt.hpp"
#include "origami/wl/generators.hpp"

namespace origami::core {
namespace {

using fsns::NodeId;
using fsns::OpType;
using sim::SimTime;

// A namespace with two hot sibling subtrees under the root:
//   /hot  (dir) with 20 files
//   /cold (dir) with 20 files
struct TwoSubtrees {
  fsns::DirTree tree;
  NodeId hot{}, cold{};
  std::vector<NodeId> hot_files, cold_files;

  TwoSubtrees() {
    hot = tree.add_dir(fsns::kRootNode, "hot");
    cold = tree.add_dir(fsns::kRootNode, "cold");
    for (int i = 0; i < 20; ++i) {
      hot_files.push_back(tree.add_file(hot, "h" + std::to_string(i)));
      cold_files.push_back(tree.add_file(cold, "c" + std::to_string(i)));
    }
    tree.finalize();
  }

  [[nodiscard]] std::vector<wl::MetaOp> window(std::size_t hot_ops,
                                               std::size_t cold_ops) const {
    std::vector<wl::MetaOp> ops;
    common::Xoshiro256 rng(3);
    for (std::size_t i = 0; i < hot_ops; ++i) {
      ops.push_back({OpType::kStat, hot_files[rng.uniform(hot_files.size())],
                     fsns::kInvalidNode, 0});
    }
    for (std::size_t i = 0; i < cold_ops; ++i) {
      ops.push_back({OpType::kStat, cold_files[rng.uniform(cold_files.size())],
                     fsns::kInvalidNode, 0});
    }
    return ops;
  }
};

// ------------------------------------------------------- appendix formula --

TEST(AppendixBenefit, LargeImbalanceMovesFullLoad) {
  // D >= 2l + o  =>  benefit = l.
  EXPECT_EQ(appendix_benefit(1000, 100, 50), 100);
  EXPECT_EQ(appendix_benefit(250, 100, 50), 100);
}

TEST(AppendixBenefit, SmallImbalanceIsOverheadLimited) {
  // D < 2l + o  =>  benefit = D - (l + o).
  EXPECT_EQ(appendix_benefit(249, 100, 50), 99);
  EXPECT_EQ(appendix_benefit(100, 100, 50), -50);  // harmful move
}

TEST(AppendixBenefit, ContinuousAtBoundary) {
  const SimTime l = 100, o = 50;
  const SimTime d = 2 * l + o;
  EXPECT_EQ(appendix_benefit(d, l, o), appendix_benefit(d - 1, l, o) + 1);
}

// --------------------------------------------------------- window analysis --

TEST(EvaluateWindow, AllLoadOnSingleOwner) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 3);
  cost::CostModel model;
  const auto ops = fx.window(100, 100);
  auto bins = evaluate_window(ops, fx.tree, map, model, true, 3);
  EXPECT_GT(bins.per_mds()[0], 0);
  EXPECT_EQ(bins.per_mds()[1], 0);
  EXPECT_EQ(bins.per_mds()[2], 0);
  EXPECT_EQ(bins.jct(), bins.per_mds()[0]);
}

TEST(EvaluateWindow, SplitsAfterMigration) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 3);
  map.migrate(fx.hot, 0, 1);
  cost::CostModel model;
  const auto ops = fx.window(100, 100);
  auto bins = evaluate_window(ops, fx.tree, map, model, true, 3);
  EXPECT_GT(bins.per_mds()[0], 0);
  EXPECT_GT(bins.per_mds()[1], 0);
  // Equal op counts, symmetric cost: the split should be nearly even.
  const double ratio = static_cast<double>(bins.per_mds()[0]) /
                       static_cast<double>(bins.per_mds()[1]);
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(EvaluateWindow, DirRctAttributedToHomeDirs) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  const auto ops = fx.window(150, 50);
  std::vector<SimTime> dir_rct;
  evaluate_window(ops, fx.tree, map, model, true, 3, &dir_rct);
  EXPECT_GT(dir_rct[fx.hot], dir_rct[fx.cold]);
  EXPECT_EQ(dir_rct[fx.cold + 1], 0);  // a file node: never a home dir
}

TEST(EvaluateWindow, CacheReducesHopCount) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  map.migrate(fx.hot, 0, 1);
  cost::CostModel model;
  const auto ops = fx.window(200, 0);
  auto cached = evaluate_window(ops, fx.tree, map, model, true, 3);
  auto uncached = evaluate_window(ops, fx.tree, map, model, false, 3);
  // Without the near-root cache every op also resolves the root partition,
  // making m=2; the full (larger) RCT is charged to the executing MDS 1.
  EXPECT_GT(uncached.total(), cached.total());
  EXPECT_GT(uncached.per_mds()[1], cached.per_mds()[1]);
  EXPECT_EQ(uncached.per_mds()[0], 0);  // bins charge the executor only
}

TEST(WindowDirStats, CountsMatchOps) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  std::vector<wl::MetaOp> ops;
  ops.push_back({OpType::kStat, fx.hot_files[0], fsns::kInvalidNode, 0});
  ops.push_back({OpType::kCreate, fx.hot_files[1], fsns::kInvalidNode, 0});
  ops.push_back({OpType::kReaddir, fx.hot, fsns::kInvalidNode, 0});
  ops.push_back({OpType::kRmdir, fx.cold, fsns::kInvalidNode, 0});
  const auto stats = window_dir_stats(ops, fx.tree, map, model, true, 3);
  EXPECT_EQ(stats[fx.hot].reads, 2u);   // stat + readdir homed at hot
  EXPECT_EQ(stats[fx.hot].writes, 1u);  // create
  EXPECT_EQ(stats[fx.hot].lsdir, 1u);
  EXPECT_EQ(stats[fx.cold].nsm_self, 1u);  // rmdir targets cold itself
  EXPECT_GT(stats[fx.hot].rct, 0);
}

// -------------------------------------------------------- subtree overhead --

TEST(SubtreeOverhead, ZeroWhenBoundaryCachedNearRoot) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  const auto ops = fx.window(200, 0);
  const auto stats = window_dir_stats(ops, fx.tree, map, model, true, 3);
  const SubtreeView view = SubtreeView::build(fx.tree, stats, map);
  // /hot is at depth 1 < cache depth 3: the new boundary is cache-hidden,
  // and there are no mutations/lsdirs => no overhead at all.
  EXPECT_EQ(subtree_overhead(view, fx.tree, map, fx.hot, model, true, 3), 0);
  // With the cache off the boundary hop is paid by every op in the subtree.
  EXPECT_GT(subtree_overhead(view, fx.tree, map, fx.hot, model, false, 3), 0);
}

TEST(SubtreeOverhead, CoordinationChargedForRootMutations) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  std::vector<wl::MetaOp> ops;
  for (int i = 0; i < 10; ++i) {
    ops.push_back({OpType::kRmdir, fx.hot, fsns::kInvalidNode, 0});
  }
  const auto stats = window_dir_stats(ops, fx.tree, map, model, true, 3);
  const SubtreeView view = SubtreeView::build(fx.tree, stats, map);
  const SimTime o = subtree_overhead(view, fx.tree, map, fx.hot, model, true, 3);
  EXPECT_EQ(o, model.params().t_coor * 10);
}

TEST(SubtreeOverhead, ZeroWhenParentAlreadyRemote) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 3);
  map.migrate(fx.hot, 0, 1);  // hot on 1, root (parent) on 0: already split
  cost::CostModel model;
  const auto ops = fx.window(100, 0);
  const auto stats = window_dir_stats(ops, fx.tree, map, model, false, 3);
  const SubtreeView view = SubtreeView::build(fx.tree, stats, map);
  EXPECT_EQ(subtree_overhead(view, fx.tree, map, fx.hot, model, false, 3), 0);
}

// -------------------------------------------------------------- Algorithm 1 --

TEST(MetaOpt, MovesHotSubtreeOffOverloadedMds) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  MetaOptParams params;
  params.stop_threshold = sim::micros(100);
  params.min_subtree_ops = 1;
  MetaOpt engine(model, params);

  const auto ops = fx.window(300, 300);
  const auto decisions = engine.optimize(ops, fx.tree, map);
  ASSERT_FALSE(decisions.empty());
  // It must move one of the two subtrees (not the root) to MDS 1.
  EXPECT_TRUE(decisions[0].subtree == fx.hot || decisions[0].subtree == fx.cold);
  EXPECT_EQ(decisions[0].from, 0u);
  EXPECT_EQ(decisions[0].to, 1u);
  EXPECT_GT(decisions[0].predicted_benefit, 0.0);
}

TEST(MetaOpt, DecisionsReduceEstimatedJct) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 3);
  cost::CostModel model;
  MetaOptParams params;
  params.min_subtree_ops = 1;
  MetaOpt engine(model, params);
  const auto ops = fx.window(400, 200);

  const auto before = evaluate_window(ops, fx.tree, map, model, true, 3).jct();
  auto decisions = engine.optimize(ops, fx.tree, map);
  ASSERT_FALSE(decisions.empty());
  mds::PartitionMap after_map = map;
  for (const auto& d : decisions) after_map.migrate(d.subtree, d.from, d.to);
  const auto after =
      evaluate_window(ops, fx.tree, after_map, model, true, 3).jct();
  EXPECT_LT(after, before);
}

TEST(MetaOpt, NoDecisionsWhenAlreadyBalanced) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  map.migrate(fx.hot, 0, 1);  // perfectly split already
  cost::CostModel model;
  MetaOptParams params;
  params.min_subtree_ops = 1;
  MetaOpt engine(model, params);
  const auto ops = fx.window(300, 300);
  const auto decisions = engine.optimize(ops, fx.tree, map);
  EXPECT_TRUE(decisions.empty());
}

TEST(MetaOpt, EmptyWindowOrSingleMdsIsNoop) {
  TwoSubtrees fx;
  cost::CostModel model;
  MetaOpt engine(model, {});
  mds::PartitionMap one(fx.tree, 1);
  EXPECT_TRUE(engine.optimize(fx.window(100, 0), fx.tree, one).empty());
  mds::PartitionMap two(fx.tree, 2);
  EXPECT_TRUE(engine.optimize({}, fx.tree, two).empty());
}

TEST(MetaOpt, DeltaGuardBlocksOverCorrection) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  MetaOptParams params;
  params.min_subtree_ops = 1;
  params.delta = 1;  // essentially forbid creating any counter-imbalance
  MetaOpt engine(model, params);
  // Only /hot is loaded: moving it entirely would swap the imbalance, which
  // the Δ guard must reject.
  const auto ops = fx.window(300, 10);
  const auto decisions = engine.optimize(ops, fx.tree, map);
  for (const auto& d : decisions) EXPECT_NE(d.subtree, fx.hot);
}

TEST(MetaOpt, EmitsLabelsForCandidates) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  MetaOptParams params;
  params.min_subtree_ops = 1;
  MetaOpt engine(model, params);
  std::vector<MetaOpt::Labelled> labels;
  engine.optimize(fx.window(300, 100), fx.tree, map, &labels);
  ASSERT_GE(labels.size(), 2u);
  bool saw_hot = false;
  for (const auto& l : labels) {
    if (l.subtree == fx.hot) {
      saw_hot = true;
      EXPECT_GT(l.benefit, 0);
      EXPECT_GT(l.load, 0);
    }
  }
  EXPECT_TRUE(saw_hot);
}

// ------------------------------------------------------- Theorem 1 property --

// Random instances of the Appendix-A setting: a parent subtree s with load
// l_s and overhead o_s, and N disjoint nested subtrees with strictly
// smaller cumulative load/overhead. Whenever Alg. 1's Δ-guard admits s
// (2*l_s + o_s - D < Δ), the gap b0 - b1 must exceed -Δ.
class Theorem1 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1, GreedyGapBoundedByDelta) {
  common::Xoshiro256 rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    const SimTime l_s = 1 + static_cast<SimTime>(rng.uniform(100000));
    const SimTime o_s = static_cast<SimTime>(rng.uniform(50000));
    // Nested disjoint subtrees: strictly smaller cumulative load/overhead.
    const int n = 1 + static_cast<int>(rng.uniform(5));
    SimTime l_k = 0;
    SimTime o_k = 0;
    for (int i = 0; i < n; ++i) {
      l_k += static_cast<SimTime>(rng.uniform(
          static_cast<std::uint64_t>((l_s - l_k) / (n - i) + 1)));
      if (o_s > o_k) {
        o_k += static_cast<SimTime>(rng.uniform(
            static_cast<std::uint64_t>((o_s - o_k) / (n - i) + 1)));
      }
    }
    if (l_k >= l_s) l_k = l_s - 1;
    if (o_k >= o_s && o_s > 0) o_k = o_s - 1;

    const SimTime d = static_cast<SimTime>(rng.uniform(400000));
    const SimTime delta = 2 * l_s + o_s - d + 1;  // smallest Δ admitting s
    if (delta <= 0) {
      // Guard vacuously satisfied for any positive Δ; check with Δ = 1.
      const SimTime b0 = appendix_benefit(d, l_s, o_s);
      const SimTime b1 = appendix_benefit(d, l_k, o_k);
      EXPECT_GT(b0 - b1, -1) << "D=" << d << " l_s=" << l_s << " o_s=" << o_s;
    } else {
      const SimTime b0 = appendix_benefit(d, l_s, o_s);
      const SimTime b1 = appendix_benefit(d, l_k, o_k);
      EXPECT_GT(b0 - b1, -delta)
          << "D=" << d << " l_s=" << l_s << " o_s=" << o_s << " l_k=" << l_k
          << " o_k=" << o_k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1, ::testing::Values(1, 2, 3, 4, 5));

// Greedy vs exhaustive on tiny instances: Algorithm 1's result is within Δ
// of the best single- or multi-subtree choice it could have made.
TEST(MetaOpt, GreedyWithinDeltaOfExhaustiveOnTinyTree) {
  // Namespace: /a with children /a/x and /a/y (all dirs with files).
  fsns::DirTree tree;
  const NodeId a = tree.add_dir(fsns::kRootNode, "a");
  const NodeId x = tree.add_dir(a, "x");
  const NodeId y = tree.add_dir(a, "y");
  std::vector<NodeId> xf, yf;
  for (int i = 0; i < 6; ++i) {
    xf.push_back(tree.add_file(x, "x" + std::to_string(i)));
    yf.push_back(tree.add_file(y, "y" + std::to_string(i)));
  }
  tree.finalize();

  common::Xoshiro256 rng(11);
  cost::CostModel model;
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<wl::MetaOp> ops;
    const auto nx = 50 + rng.uniform(300);
    const auto ny = 50 + rng.uniform(300);
    for (std::uint64_t i = 0; i < nx; ++i) {
      ops.push_back({OpType::kStat, xf[rng.uniform(xf.size())], fsns::kInvalidNode, 0});
    }
    for (std::uint64_t i = 0; i < ny; ++i) {
      ops.push_back({OpType::kStat, yf[rng.uniform(yf.size())], fsns::kInvalidNode, 0});
    }

    mds::PartitionMap map(tree, 2);
    MetaOptParams params;
    params.min_subtree_ops = 1;
    params.max_decisions = 1;  // single greedy step, as in Theorem 1
    MetaOpt engine(model, params);
    const auto decisions = engine.optimize(ops, tree, map);

    // Exhaustive: try every subset of {a, x, y} migrations to MDS 1.
    const auto base = evaluate_window(ops, tree, map, model, true, 3).jct();
    SimTime best_gain = 0;
    const std::vector<std::vector<NodeId>> options = {
        {a}, {x}, {y}, {x, y}};
    for (const auto& subset : options) {
      mds::PartitionMap alt = map;
      for (NodeId s : subset) alt.migrate(s, 0, 1);
      const auto jct = evaluate_window(ops, tree, alt, model, true, 3).jct();
      best_gain = std::max(best_gain, base - jct);
    }

    SimTime greedy_gain = 0;
    if (!decisions.empty()) {
      mds::PartitionMap alt = map;
      alt.migrate(decisions[0].subtree, decisions[0].from, decisions[0].to);
      greedy_gain =
          base - evaluate_window(ops, tree, alt, model, true, 3).jct();
    }
    EXPECT_GT(greedy_gain - best_gain, -params.delta)
        << "nx=" << nx << " ny=" << ny;
  }
}

}  // namespace
}  // namespace origami::core

namespace origami::core {
namespace {

TEST(EvaluateWindow, DeterministicAndLinearInDuplication) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  const auto ops = fx.window(200, 100);
  const auto a = evaluate_window(ops, fx.tree, map, model, true, 3);
  const auto b = evaluate_window(ops, fx.tree, map, model, true, 3);
  EXPECT_EQ(a.per_mds(), b.per_mds());

  // Doubling the window doubles every bin (the analytic model is additive).
  std::vector<wl::MetaOp> twice(ops.begin(), ops.end());
  twice.insert(twice.end(), ops.begin(), ops.end());
  const auto c = evaluate_window(twice, fx.tree, map, model, true, 3);
  for (std::size_t m = 0; m < a.per_mds().size(); ++m) {
    EXPECT_EQ(c.per_mds()[m], 2 * a.per_mds()[m]);
  }
}

TEST(MetaOpt, MigrationCostChargingSuppressesMarginalMoves) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  // A tiny window: splitting /hot off would help slightly, but its load
  // (~0.6 ms) is below the transfer cost of moving the subtree
  // (21 inodes x 25 us = 525 us each way).
  const auto ops = fx.window(2, 2);

  MetaOptParams charged;
  charged.min_subtree_ops = 1;
  charged.stop_threshold = sim::micros(50);
  charged.charge_migration_cost = true;
  charged.migration_amortization = 1.0;

  MetaOptParams free_migration = charged;
  free_migration.charge_migration_cost = false;

  MetaOpt engine_charged(model, charged);
  MetaOpt engine_free(model, free_migration);
  const auto with_cost = engine_charged.optimize(ops, fx.tree, map);
  const auto without_cost = engine_free.optimize(ops, fx.tree, map);
  // Cost charging must be at least as conservative.
  EXPECT_LE(with_cost.size(), without_cost.size());
  EXPECT_FALSE(without_cost.empty());
}

TEST(MetaOpt, InodeBudgetCapsDecisions) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 3);
  cost::CostModel model;
  MetaOptParams p;
  p.min_subtree_ops = 1;
  p.stop_threshold = sim::micros(100);
  p.max_inodes_per_round = 5;  // smaller than any subtree (21+ inodes)
  MetaOpt engine(model, p);
  EXPECT_TRUE(engine.optimize(fx.window(300, 300), fx.tree, map).empty());
}

TEST(MetaOpt, LabelsIncludeLoadAndOverhead) {
  TwoSubtrees fx;
  mds::PartitionMap map(fx.tree, 2);
  cost::CostModel model;
  MetaOptParams p;
  p.min_subtree_ops = 1;
  MetaOpt engine(model, p);
  std::vector<MetaOpt::Labelled> labels;
  engine.optimize(fx.window(200, 50), fx.tree, map, &labels);
  ASSERT_FALSE(labels.empty());
  for (const auto& l : labels) {
    EXPECT_GE(l.load, 0);
    EXPECT_GE(l.overhead, 0);
    EXPECT_LT(l.from, 2u);
    EXPECT_LT(l.to, 2u);
    // Benefit can never exceed the moved load (Appendix A: b0 <= l_s).
    EXPECT_LE(l.benefit, l.load);
  }
}

}  // namespace
}  // namespace origami::core
