// Randomized chaos sweep for the durable-recovery subsystem: many seeded
// fault schedules (crash-heavy, straggler-heavy, lossy-network) replayed
// under every partitioning strategy, each run audited post-hoc by the
// NamespaceInvariantChecker — ownership, two-phase well-formedness, journal
// monotonicity, and no-acked-op-lost must hold on every schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <memory>
#include <span>
#include <vector>

#include "origami/cluster/replay.hpp"
#include "origami/core/balancers.hpp"
#include "origami/recovery/invariants.hpp"
#include "origami/wl/generators.hpp"

namespace origami {
namespace {

enum class Schedule { kCrash, kStraggler, kLoss };
enum class Strategy { kCHash, kFHash, kOrigami };

constexpr Schedule kSchedules[] = {Schedule::kCrash, Schedule::kStraggler,
                                   Schedule::kLoss};
constexpr Strategy kStrategies[] = {Strategy::kCHash, Strategy::kFHash,
                                    Strategy::kOrigami};
constexpr std::uint64_t kSeedsPerSchedule = 16;  // 16 x 3 = 48 runs

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kCrash: return "crash";
    case Schedule::kStraggler: return "straggler";
    case Schedule::kLoss: return "loss";
  }
  return "?";
}

fault::FaultPlan plan_for(Schedule s, std::uint64_t seed) {
  fault::FaultPlan plan;
  plan.seed = 1000 + seed;
  switch (s) {
    case Schedule::kCrash:
      plan.crash_prob = 0.25;
      plan.crash_recovery = sim::millis(150);
      plan.rpc_loss_prob = 0.001;
      break;
    case Schedule::kStraggler:
      plan.straggler_prob = 0.5;
      plan.straggler_slow = 4.0;
      plan.straggler_duration = sim::millis(120);
      plan.crash_prob = 0.05;
      plan.crash_recovery = sim::millis(100);
      break;
    case Schedule::kLoss:
      plan.rpc_loss_prob = 0.01;
      plan.rpc_corrupt_prob = 0.002;
      plan.crash_prob = 0.05;
      plan.crash_recovery = sim::millis(100);
      break;
  }
  return plan;
}

std::unique_ptr<cluster::Balancer> make_balancer(Strategy s) {
  switch (s) {
    case Strategy::kCHash:
      return std::make_unique<cluster::StaticBalancer>(
          cluster::StaticBalancer::Kind::kCoarseHash);
    case Strategy::kFHash:
      return std::make_unique<cluster::StaticBalancer>(
          cluster::StaticBalancer::Kind::kFineHash);
    case Strategy::kOrigami: {
      // Heuristic benefit model (subtree activity share): exercises live
      // two-phase migrations without GBDT training cost in the sweep.
      core::OrigamiBalancer::Params p;
      p.min_subtree_ops = 8;
      p.min_predicted_benefit = 0.0;
      core::BenefitPredictor pred = [](std::span<const float> feat) {
        return static_cast<double>(feat[3]) + static_cast<double>(feat[4]);
      };
      return std::make_unique<core::OrigamiBalancer>(
          std::move(pred), cost::CostModel{}, p, core::RebalanceTrigger{0.0});
    }
  }
  return nullptr;
}

TEST(RecoveryChaos, SweepHoldsNamespaceInvariants) {
  wl::TraceRwConfig cfg;
  cfg.ops = 15'000;
  cfg.seed = 23;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  std::uint64_t runs = 0;
  std::uint64_t runs_with_replays = 0;
  std::uint64_t runs_with_migrations = 0;
  for (Schedule sched : kSchedules) {
    for (std::uint64_t seed = 0; seed < kSeedsPerSchedule; ++seed) {
      // Rotate strategies so every (schedule, strategy) pair is hit while
      // the sweep stays ~50 runs in total.
      const Strategy strat = kStrategies[(seed + static_cast<std::uint64_t>(
                                                     sched)) %
                                         std::size(kStrategies)];
      cluster::ReplayOptions opt;
      opt.mds_count = 4;
      opt.clients = 16;
      opt.epoch_length = sim::millis(200);
      opt.warmup_epochs = 0;
      opt.faults = plan_for(sched, seed);
      opt.retry.timeout = sim::millis(2);

      auto balancer = make_balancer(strat);
      const auto r = cluster::replay_trace(trace, opt, *balancer);
      ++runs;
      runs_with_replays += r.faults.journal_replays > 0;
      runs_with_migrations += r.faults.committed_migrations > 0;

      // Conservation: every issued op either completed or failed loudly.
      EXPECT_EQ(r.completed_ops + r.faults.failed_ops, cfg.ops)
          << schedule_name(sched) << " seed " << seed;

      ASSERT_NE(r.ledger, nullptr);
      const auto report =
          recovery::NamespaceInvariantChecker::check(trace.tree, *r.ledger);
      EXPECT_TRUE(report.ok())
          << "schedule=" << schedule_name(sched) << " seed=" << seed
          << " strategy=" << r.balancer_name << "\n"
          << report.to_string();
    }
  }
  EXPECT_EQ(runs, kSeedsPerSchedule * std::size(kSchedules));
  // The sweep must actually exercise the machinery it audits.
  EXPECT_GT(runs_with_replays, 0u);
  EXPECT_GT(runs_with_migrations, 0u);
  std::printf("chaos sweep: %llu runs, %llu with journal replays, "
              "%llu with committed migrations\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(runs_with_replays),
              static_cast<unsigned long long>(runs_with_migrations));
}

// Async-commit chaos: the same schedules with group-committed journaling.
// Beyond the namespace invariants this sweep audits the durability contract
// on every run — I7 (nothing durable lost) and I8 (acked losses bounded by
// the window and batch, reported per crash) — and checks that the sweep
// actually loses acked records somewhere, so the I-checks aren't vacuous.
TEST(RecoveryChaos, AsyncCommitSweepHoldsDurabilityContract) {
  wl::TraceRwConfig cfg;
  cfg.ops = 15'000;
  cfg.seed = 23;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  std::uint64_t runs = 0;
  std::uint64_t runs_with_group_commits = 0;
  std::uint64_t total_acked_lost = 0;
  std::uint64_t total_unacked_lost = 0;
  for (Schedule sched : kSchedules) {
    for (std::uint64_t seed = 0; seed < kSeedsPerSchedule; ++seed) {
      const Strategy strat = kStrategies[(seed + static_cast<std::uint64_t>(
                                                     sched)) %
                                         std::size(kStrategies)];
      cluster::ReplayOptions opt;
      opt.mds_count = 4;
      opt.clients = 16;
      opt.epoch_length = sim::millis(200);
      opt.warmup_epochs = 0;
      opt.faults = plan_for(sched, seed);
      opt.retry.timeout = sim::millis(2);
      opt.recovery.commit_mode = recovery::CommitMode::kAsync;
      // Rotate the contract so both the window and the batch threshold get
      // to be the binding flush trigger across the sweep.
      opt.recovery.commit_window = sim::millis(1 + seed % 3);
      opt.recovery.commit_batch = (seed % 2 == 0) ? 32 : 512;

      auto balancer = make_balancer(strat);
      const auto r = cluster::replay_trace(trace, opt, *balancer);
      ++runs;
      runs_with_group_commits += r.faults.group_commits > 0;
      total_acked_lost += r.faults.acked_lost_ops;
      total_unacked_lost += r.faults.unacked_lost_ops;

      EXPECT_EQ(r.completed_ops + r.faults.failed_ops, cfg.ops)
          << schedule_name(sched) << " seed " << seed;

      ASSERT_NE(r.ledger, nullptr);
      ASSERT_TRUE(r.ledger->async_commit);
      const auto report =
          recovery::NamespaceInvariantChecker::check(trace.tree, *r.ledger);
      EXPECT_TRUE(report.ok())
          << "schedule=" << schedule_name(sched) << " seed=" << seed
          << " strategy=" << r.balancer_name << "\n"
          << report.to_string();

      // Per-run closure of the global accounting: acked ops partition into
      // durable and (reported) lost.
      const auto audit = recovery::audit_durability(*r.ledger);
      EXPECT_EQ(audit.acked_durable + audit.acked_lost,
                r.ledger->acked_mutations.size())
          << schedule_name(sched) << " seed " << seed;
      EXPECT_LE(audit.acked_lost, r.faults.acked_lost_ops)
          << schedule_name(sched) << " seed " << seed;
    }
  }
  EXPECT_EQ(runs, kSeedsPerSchedule * std::size(kSchedules));
  EXPECT_EQ(runs_with_group_commits, runs);  // async journaling always runs
  // Crash-heavy schedules must actually expose the durability window.
  EXPECT_GT(total_acked_lost + total_unacked_lost, 0u);
  std::printf("async chaos sweep: %llu runs, %llu acked-lost + %llu "
              "unacked-lost records\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(total_acked_lost),
              static_cast<unsigned long long>(total_unacked_lost));
}

// Async commit pushed down into the real store: crash-heavy schedules with
// --kv-backing semantics, where each MDS's InodeStore group-commits a real
// file-backed WAL and every crash sweeps its commit buffer, tears the log
// tail, and replays the surviving prefix. The checker holds I7/I8 against
// the *measured* store (ledger->kv_crashes), not just the modeled journal.
TEST(RecoveryChaos, AsyncKvBackedSweepAuditsMeasuredStore) {
  wl::TraceRwConfig cfg;
  cfg.ops = 15'000;
  cfg.seed = 23;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  const std::string wal_dir = ::testing::TempDir() + "/origami_kv_chaos_wal";
  std::filesystem::create_directories(wal_dir);

  std::uint64_t total_kv_recoveries = 0;
  std::uint64_t total_kv_acked_lost = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Strategy strat = kStrategies[seed % std::size(kStrategies)];
    cluster::ReplayOptions opt;
    opt.mds_count = 4;
    opt.clients = 16;
    opt.epoch_length = sim::millis(200);
    opt.warmup_epochs = 0;
    opt.faults = plan_for(Schedule::kCrash, seed);
    opt.retry.timeout = sim::millis(2);
    opt.recovery.commit_mode = recovery::CommitMode::kAsync;
    opt.recovery.commit_window = sim::millis(1 + seed % 3);
    opt.recovery.commit_batch = (seed % 2 == 0) ? 32 : 512;
    opt.kv_backing = true;
    opt.kv_wal_dir = wal_dir;

    auto balancer = make_balancer(strat);
    const auto r = cluster::replay_trace(trace, opt, *balancer);
    ASSERT_TRUE(r.kv_backed);
    ASSERT_NE(r.ledger, nullptr);
    ASSERT_TRUE(r.ledger->kv_backed);
    EXPECT_EQ(r.ledger->kv_crashes.size(), r.faults.kv_crash_recoveries)
        << "seed " << seed;
    total_kv_recoveries += r.faults.kv_crash_recoveries;
    total_kv_acked_lost += r.faults.kv_acked_lost_records;

    // The real group-commit pipeline ran and measured real fsyncs.
    EXPECT_GT(r.kv_stats.group_commits, 0u) << "seed " << seed;
    EXPECT_GT(r.kv_stats.wal_fsyncs, 0u) << "seed " << seed;
    EXPECT_GT(r.kv_stats.fsync_micros.count(), 0u) << "seed " << seed;

    const auto report =
        recovery::NamespaceInvariantChecker::check(trace.tree, *r.ledger);
    EXPECT_TRUE(report.ok()) << "seed=" << seed
                             << " strategy=" << r.balancer_name << "\n"
                             << report.to_string();
  }
  // Crash-heavy schedules must actually crash and recover the real store.
  EXPECT_GT(total_kv_recoveries, 0u);
  std::printf("kv-backed async sweep: %llu store recoveries, %llu acked "
              "records lost from real commit buffers\n",
              static_cast<unsigned long long>(total_kv_recoveries),
              static_cast<unsigned long long>(total_kv_acked_lost));
}

}  // namespace
}  // namespace origami
