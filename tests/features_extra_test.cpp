// Tests for the newer cross-cutting features: text trace import/export,
// GBDT feature sampling, service-time jitter, the EWMA-smoothed trigger
// and the epoch CSV exporter.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "origami/cluster/replay.hpp"
#include "origami/common/rng.hpp"
#include "origami/core/balancers.hpp"
#include "origami/ml/gbdt.hpp"
#include "origami/ml/metrics.hpp"
#include "origami/wl/generators.hpp"
#include "origami/wl/trace.hpp"

namespace origami {
namespace {

// -------------------------------------------------------------- text trace --

TEST(TextTrace, ParsesOpsAndBuildsNamespace) {
  std::istringstream in(R"(# a tiny session
mkdir /home
mkdir /home/alice
create /home/alice/notes.txt 4096
stat /home/alice/notes.txt
readdir /home/alice
rename /home/alice/notes.txt /home/archive/notes.txt
unlink /home/alice/notes.txt

stat /home
)");
  auto parsed = wl::parse_text_trace(in, "session");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const wl::Trace& t = parsed.value();
  EXPECT_EQ(t.name, "session");
  ASSERT_EQ(t.ops.size(), 8u);
  EXPECT_EQ(t.ops[0].type, fsns::OpType::kMkdir);
  EXPECT_EQ(t.ops[2].type, fsns::OpType::kCreate);
  EXPECT_EQ(t.ops[2].data_bytes, 4096u);
  EXPECT_EQ(t.ops[5].type, fsns::OpType::kRename);
  EXPECT_NE(t.ops[5].aux, fsns::kInvalidNode);
  EXPECT_TRUE(t.tree.is_dir(t.ops[5].aux));  // /home/archive materialised
  // The same path maps to the same node across lines.
  EXPECT_EQ(t.ops[2].target, t.ops[3].target);
  // Namespace: /, home, alice, archive + notes.txt.
  EXPECT_EQ(t.tree.dir_count(), 4u);
  EXPECT_EQ(t.tree.file_count(), 1u);
}

TEST(TextTrace, RejectsMalformedInput) {
  {
    std::istringstream in("frobnicate /x\n");
    EXPECT_FALSE(wl::parse_text_trace(in).is_ok());
  }
  {
    std::istringstream in("stat\n");
    EXPECT_FALSE(wl::parse_text_trace(in).is_ok());
  }
  {
    std::istringstream in("rename /a\n");
    EXPECT_FALSE(wl::parse_text_trace(in).is_ok());
  }
  {
    // Descending through a file.
    std::istringstream in("create /f\nstat /f/child\n");
    EXPECT_FALSE(wl::parse_text_trace(in).is_ok());
  }
}

TEST(TextTrace, RoundtripThroughTextFormat) {
  wl::TraceRwConfig cfg;
  cfg.ops = 2'000;
  cfg.projects = 3;
  cfg.modules_per_project = 2;
  cfg.sources_per_module = 5;
  cfg.headers_shared = 20;
  const wl::Trace original = wl::make_trace_rw(cfg);

  std::stringstream buf;
  ASSERT_TRUE(wl::write_text_trace(original, buf).is_ok());
  auto parsed = wl::parse_text_trace(buf, original.name);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const wl::Trace& t = parsed.value();
  ASSERT_EQ(t.ops.size(), original.ops.size());
  for (std::size_t i = 0; i < t.ops.size(); ++i) {
    EXPECT_EQ(t.ops[i].type, original.ops[i].type) << i;
    EXPECT_EQ(t.tree.full_path(t.ops[i].target),
              original.tree.full_path(original.ops[i].target))
        << i;
  }
  // The imported trace replays cleanly.
  cluster::ReplayOptions opt;
  opt.mds_count = 2;
  opt.clients = 8;
  opt.epoch_length = sim::millis(100);
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(t, opt, b);
  EXPECT_EQ(r.completed_ops, t.ops.size());
}

// ------------------------------------------------------- feature sampling --

TEST(GbdtFeatureFraction, StillLearnsAndSpreadsSplits) {
  ml::Dataset data;
  common::Xoshiro256 rng(3);
  std::vector<float> row(6);
  for (int i = 0; i < 3000; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.uniform_double());
    // Signal spread over two features.
    data.add_row(row, 2.f * row[0] + row[3]);
  }
  ml::GbdtParams params;
  params.rounds = 120;
  params.feature_fraction = 0.5;
  const auto model = ml::GbdtModel::train(data, params);
  const auto pred = model.predict_batch(data);
  EXPECT_GT(ml::r2(pred, data.labels()), 0.9);
  // Both informative features must have been used despite sampling.
  EXPECT_GT(model.feature_importance()[0], 0.0);
  EXPECT_GT(model.feature_importance()[3], 0.0);
}

// --------------------------------------------------------- service jitter --

TEST(ServiceJitter, ChangesTimingButStaysDeterministic) {
  wl::TraceRwConfig cfg;
  cfg.ops = 15'000;
  cfg.projects = 4;
  cfg.modules_per_project = 3;
  cfg.sources_per_module = 8;
  cfg.headers_shared = 40;
  const wl::Trace trace = wl::make_trace_rw(cfg);
  cluster::ReplayOptions exact;
  exact.mds_count = 3;
  exact.clients = 12;
  exact.epoch_length = sim::millis(200);
  cluster::ReplayOptions noisy = exact;
  noisy.cost_params.service_jitter_frac = 0.3;

  cluster::StaticBalancer b1(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer b2(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer b3(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r_exact = cluster::replay_trace(trace, exact, b1);
  const auto r_noisy1 = cluster::replay_trace(trace, noisy, b2);
  const auto r_noisy2 = cluster::replay_trace(trace, noisy, b3);

  EXPECT_NE(r_exact.makespan, r_noisy1.makespan);
  EXPECT_EQ(r_noisy1.makespan, r_noisy2.makespan);  // seeded determinism
  EXPECT_EQ(r_noisy1.completed_ops, trace.ops.size());
  // Throughput should be in the same ballpark (mean-preserving-ish noise).
  EXPECT_NEAR(r_noisy1.throughput_ops / r_exact.throughput_ops, 1.0, 0.25);
}

// ------------------------------------------------------------ EWMA trigger --

cluster::EpochSnapshot busy_snapshot(std::vector<sim::SimTime> busy) {
  cluster::EpochSnapshot snap;
  for (sim::SimTime b : busy) {
    mds::MdsEpochCounters c;
    c.busy = b;
    c.ops_executed = 10;
    snap.mds.push_back(c);
  }
  return snap;
}

TEST(SmoothedTrigger, PatienceDampsTransients) {
  core::RebalanceTrigger trigger;
  trigger.threshold = 0.3;
  trigger.patience = 2;
  const auto spike = busy_snapshot({1000, 10, 10});
  const auto calm = busy_snapshot({100, 100, 100});
  EXPECT_FALSE(trigger.should_rebalance(spike));  // 1st over-threshold epoch
  EXPECT_FALSE(trigger.should_rebalance(calm));   // reset
  EXPECT_FALSE(trigger.should_rebalance(spike));
  EXPECT_TRUE(trigger.should_rebalance(spike));   // 2 consecutive -> fire
}

TEST(SmoothedTrigger, EwmaFiltersOneOffSpike) {
  core::RebalanceTrigger trigger;
  trigger.threshold = 0.5;
  trigger.ewma_alpha = 0.2;
  const auto calm = busy_snapshot({100, 100, 100});
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(trigger.should_rebalance(calm));
  }
  // A single extreme epoch moves the EWMA only by alpha.
  const auto spike = busy_snapshot({1000, 1, 1});
  EXPECT_FALSE(trigger.should_rebalance(spike));
  // Sustained imbalance eventually fires.
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) {
    fired = trigger.should_rebalance(spike);
  }
  EXPECT_TRUE(fired);
}

// ------------------------------------------------------------- epoch CSV --

TEST(EpochCsv, WritesOneRowPerMdsPerEpoch) {
  wl::TraceRwConfig cfg;
  cfg.ops = 10'000;
  cfg.projects = 4;
  cfg.modules_per_project = 3;
  cfg.sources_per_module = 8;
  cfg.headers_shared = 40;
  const wl::Trace trace = wl::make_trace_rw(cfg);
  cluster::ReplayOptions opt;
  opt.mds_count = 3;
  opt.clients = 12;
  opt.epoch_length = sim::millis(100);
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, b);

  const std::string path = ::testing::TempDir() + "/origami_epochs.csv";
  ASSERT_TRUE(cluster::write_epoch_csv(r, path).is_ok());
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + r.epochs.size() * opt.mds_count);  // header + rows
  std::remove(path.c_str());
}

TEST(PerClassLatency, SumsToTotalAndOrdersSensibly) {
  const wl::Trace trace = wl::make_trace_rw({});
  cluster::ReplayOptions opt;
  opt.mds_count = 3;
  opt.clients = 12;
  opt.epoch_length = sim::millis(200);
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kFineHash);
  const auto r = cluster::replay_trace(trace, opt, b);
  std::uint64_t by_class = 0;
  for (const auto& h : r.latency_by_class) by_class += h.count();
  EXPECT_EQ(by_class, r.latency.count());
  // Cross-MDS mutations are the slowest class under fine hashing (T_coor).
  const auto& nsm = r.latency_by_class[static_cast<int>(fsns::OpClass::kNsMutation)];
  const auto& other = r.latency_by_class[static_cast<int>(fsns::OpClass::kOther)];
  ASSERT_GT(nsm.count(), 0u);
  ASSERT_GT(other.count(), 0u);
  EXPECT_GT(nsm.mean(), other.mean());
}

}  // namespace
}  // namespace origami

namespace origami {
namespace {

TEST(OpenLoop, BelowCapacityIsStableAndDeterministic) {
  wl::TraceRwConfig cfg;
  cfg.ops = 30'000;
  cfg.projects = 4;
  cfg.modules_per_project = 3;
  cfg.sources_per_module = 8;
  cfg.headers_shared = 40;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  cluster::ReplayOptions opt;
  opt.mds_count = 3;
  opt.open_loop_rate = 5'000.0;  // far below ~3x20k capacity
  opt.loop_trace = true;
  opt.time_limit = sim::seconds(2);
  opt.epoch_length = sim::millis(500);

  cluster::StaticBalancer b1(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer b2(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto a = cluster::replay_trace(trace, opt, b1);
  const auto b = cluster::replay_trace(trace, opt, b2);

  // ~rate x time arrivals completed; latency stays near the no-queue level.
  EXPECT_NEAR(static_cast<double>(a.completed_ops), 10'000.0, 1'500.0);
  EXPECT_LT(a.p99_latency_us, 2'000.0);
  EXPECT_EQ(a.makespan, b.makespan);  // deterministic
  EXPECT_EQ(a.completed_ops, b.completed_ops);
}

TEST(OpenLoop, OverloadBuildsQueues) {
  wl::TraceRwConfig cfg;
  cfg.ops = 30'000;
  cfg.projects = 4;
  cfg.modules_per_project = 3;
  cfg.sources_per_module = 8;
  cfg.headers_shared = 40;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  cluster::ReplayOptions light;
  light.mds_count = 1;
  light.open_loop_rate = 5'000.0;
  light.loop_trace = true;
  light.time_limit = sim::seconds(2);
  cluster::ReplayOptions heavy = light;
  heavy.open_loop_rate = 40'000.0;  // ~2x a single MDS's capacity

  cluster::StaticBalancer b1(cluster::StaticBalancer::Kind::kSingle);
  cluster::StaticBalancer b2(cluster::StaticBalancer::Kind::kSingle);
  const auto r_light = cluster::replay_trace(trace, light, b1);
  const auto r_heavy = cluster::replay_trace(trace, heavy, b2);
  EXPECT_GT(r_heavy.p99_latency_us, 20.0 * r_light.p99_latency_us);
}

}  // namespace
}  // namespace origami

#include "origami/core/pipeline.hpp"

namespace origami {
namespace {

TEST(ModelPersistence, SaveLoadRoundtrip) {
  // Train tiny models from synthetic label rows.
  core::LabelGenResult labels{ml::Dataset(core::feature_name_vector()),
                              ml::Dataset(core::feature_name_vector()),
                              {}};
  common::Xoshiro256 rng(17);
  std::vector<float> row(core::kFeatureCount);
  for (int i = 0; i < 500; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.uniform_double());
    labels.benefit_data.add_row(row, row[3]);
    labels.popularity_data.add_row(row, row[4]);
  }
  ml::GbdtParams params;
  params.rounds = 30;
  const auto models = core::train_models(labels, params);

  const std::string prefix = ::testing::TempDir() + "/origami_models";
  ASSERT_TRUE(core::save_models(models, prefix).is_ok());
  auto loaded = core::load_models(prefix);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  for (int i = 0; i < 20; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.uniform_double());
    EXPECT_NEAR(loaded.value().benefit->predict(row),
                models.benefit->predict(row), 1e-12);
    EXPECT_NEAR(loaded.value().popularity->predict(row),
                models.popularity->predict(row), 1e-12);
  }
  std::remove((prefix + ".benefit.model").c_str());
  std::remove((prefix + ".popularity.model").c_str());
  EXPECT_FALSE(core::load_models(prefix).is_ok());
}

}  // namespace
}  // namespace origami
