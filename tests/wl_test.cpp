// Tests pinning each workload generator to its paper-described shape
// (§5.1) plus trace (de)serialisation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>

#include "origami/wl/generators.hpp"
#include "origami/wl/trace.hpp"

namespace origami::wl {
namespace {

using fsns::OpType;

TEST(TraceRw, ShapeMatchesCompileWorkload) {
  TraceRwConfig cfg;
  cfg.ops = 60'000;
  const Trace t = make_trace_rw(cfg);
  EXPECT_EQ(t.name, "trace-rw");
  EXPECT_EQ(t.ops.size(), cfg.ops);
  const TraceSummary s = summarize(t);
  // Read-write mix: creates and unlinks present but reads dominate.
  EXPECT_GT(s.write_fraction, 0.10);
  EXPECT_LT(s.write_fraction, 0.50);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kCreate)], 0u);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kStat)], 0u);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kReaddir)], 0u);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kRename)], 0u);
}

TEST(TraceRw, TargetsAreValidAndFilesHaveDirParents) {
  TraceRwConfig cfg;
  cfg.ops = 20'000;
  const Trace t = make_trace_rw(cfg);
  for (const MetaOp& op : t.ops) {
    ASSERT_LT(op.target, t.tree.size());
    if (op.type == OpType::kReaddir) {
      EXPECT_TRUE(t.tree.is_dir(op.target));
    }
    if (op.type == OpType::kRename) {
      ASSERT_NE(op.aux, fsns::kInvalidNode);
      EXPECT_TRUE(t.tree.is_dir(op.aux));
    }
  }
}

TEST(TraceRo, ReadOnlySkewedAndDeep) {
  TraceRoConfig cfg;
  cfg.ops = 60'000;
  const Trace t = make_trace_ro(cfg);
  const TraceSummary s = summarize(t);
  // "only includes read-type operations"
  EXPECT_DOUBLE_EQ(s.write_fraction, 0.0);
  // "extends to a considerable depth" — deeper than ten levels.
  EXPECT_GE(s.max_depth, 11u);
  EXPECT_GT(s.mean_depth, 3.0);
  // "exhibits a significant skew" — top 1% of targets take a large share.
  EXPECT_GT(s.top1pct_share, 0.25);
}

TEST(TraceWi, WriteIntensiveAndDynamic) {
  TraceWiConfig cfg;
  cfg.ops = 60'000;
  const Trace t = make_trace_wi(cfg);
  const TraceSummary s = summarize(t);
  EXPECT_GT(s.write_fraction, 0.60);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kCreate)],
            s.op_counts[static_cast<int>(OpType::kStat)]);

  // Dynamism: the hot tenant set rotates per phase, so the most-hit tenant
  // of the first phase should lose its dominance in a later phase.
  const std::size_t phase_len = t.ops.size() / cfg.phases;
  auto tenant_of = [&](fsns::NodeId node) {
    // /volumes/tenantX/... -> ancestor at depth 2
    auto chain = t.tree.ancestors(node);
    return chain.size() > 2 ? chain[2] : chain.back();
  };
  std::map<fsns::NodeId, int> first_phase;
  std::map<fsns::NodeId, int> later_phase;
  for (std::size_t i = 0; i < phase_len; ++i) {
    ++first_phase[tenant_of(t.ops[i].target)];
  }
  for (std::size_t i = 2 * phase_len; i < 3 * phase_len; ++i) {
    ++later_phase[tenant_of(t.ops[i].target)];
  }
  auto hottest = [](const std::map<fsns::NodeId, int>& m) {
    fsns::NodeId best = 0;
    int n = -1;
    for (auto& [k, v] : m) {
      if (v > n) {
        n = v;
        best = k;
      }
    }
    return best;
  };
  EXPECT_NE(hottest(first_phase), hottest(later_phase));
}

TEST(Generators, DeterministicBySeed) {
  TraceRwConfig cfg;
  cfg.ops = 5'000;
  const Trace a = make_trace_rw(cfg);
  const Trace b = make_trace_rw(cfg);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  ASSERT_EQ(a.tree.size(), b.tree.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].target, b.ops[i].target);
    EXPECT_EQ(a.ops[i].type, b.ops[i].type);
  }
  cfg.seed = 999;
  const Trace c = make_trace_rw(cfg);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    if (a.ops[i].target != c.ops[i].target) ++diff;
  }
  EXPECT_GT(diff, a.ops.size() / 10);
}

TEST(Generators, MotivationTraceIsReadMostly) {
  const Trace t = make_trace_web_motivation(7, 20'000);
  const TraceSummary s = summarize(t);
  EXPECT_DOUBLE_EQ(s.write_fraction, 0.0);
  EXPECT_GT(s.top1pct_share, 0.2);
}

TEST(Summary, CountsAreConsistent) {
  TraceRwConfig cfg;
  cfg.ops = 10'000;
  const Trace t = make_trace_rw(cfg);
  const TraceSummary s = summarize(t);
  std::uint64_t total = 0;
  for (auto c : s.op_counts) total += c;
  EXPECT_EQ(total, s.total_ops);
  EXPECT_EQ(s.total_ops, t.ops.size());
  EXPECT_GT(s.unique_targets, 100u);
  EXPECT_LE(s.unique_targets, t.tree.size());
}

TEST(TraceIo, SaveLoadRoundtrip) {
  TraceWiConfig cfg;
  cfg.ops = 8'000;
  cfg.tenants = 4;
  cfg.dirs_per_tenant = 40;
  const Trace original = make_trace_wi(cfg);
  const std::string path = ::testing::TempDir() + "/origami_trace_rt.bin";
  ASSERT_TRUE(save_trace(original, path).is_ok());

  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  const Trace& t = loaded.value();
  EXPECT_EQ(t.name, original.name);
  ASSERT_EQ(t.tree.size(), original.tree.size());
  ASSERT_EQ(t.ops.size(), original.ops.size());
  for (std::size_t i = 0; i < t.tree.size(); ++i) {
    const auto id = static_cast<fsns::NodeId>(i);
    EXPECT_EQ(t.tree.node(id).parent, original.tree.node(id).parent);
    EXPECT_EQ(t.tree.node(id).name, original.tree.node(id).name);
    EXPECT_EQ(t.tree.is_dir(id), original.tree.is_dir(id));
  }
  for (std::size_t i = 0; i < t.ops.size(); ++i) {
    EXPECT_EQ(t.ops[i].type, original.ops[i].type);
    EXPECT_EQ(t.ops[i].target, original.ops[i].target);
    EXPECT_EQ(t.ops[i].aux, original.ops[i].aux);
    EXPECT_EQ(t.ops[i].data_bytes, original.ops[i].data_bytes);
  }
  // Subtree metadata is rebuilt by finalize() on load.
  EXPECT_EQ(t.tree.node(fsns::kRootNode).subtree_nodes,
            original.tree.node(fsns::kRootNode).subtree_nodes);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsMissingAndGarbage) {
  EXPECT_FALSE(load_trace("/nonexistent/path.bin").is_ok());
  const std::string path = ::testing::TempDir() + "/origami_trace_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace";
  }
  auto r = load_trace(path);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kCorruption);
  std::remove(path.c_str());
}

class TraceSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceSizes, GeneratorsHonorOpsBudget) {
  const std::uint64_t ops = GetParam();
  TraceRwConfig rw;
  rw.ops = ops;
  EXPECT_EQ(make_trace_rw(rw).ops.size(), ops);
  TraceRoConfig ro;
  ro.ops = ops;
  ro.dirs = 2'000;
  ro.files = 8'000;
  EXPECT_EQ(make_trace_ro(ro).ops.size(), ops);
  TraceWiConfig wi;
  wi.ops = ops;
  wi.tenants = 4;
  wi.dirs_per_tenant = 50;
  EXPECT_EQ(make_trace_wi(wi).ops.size(), ops);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TraceSizes,
                         ::testing::Values(1'000, 10'000, 50'000));

}  // namespace
}  // namespace origami::wl

namespace origami::wl {
namespace {

TEST(TraceMdtest, PhasesAndShape) {
  TraceMdtestConfig cfg;
  cfg.ranks = 8;
  cfg.files_per_rank = 50;
  cfg.iterations = 2;
  const Trace t = make_trace_mdtest(cfg);
  EXPECT_EQ(t.ops.size(), 8u * 50u * 3u * 2u);
  const TraceSummary s = summarize(t);
  // create + unlink = 2/3 of ops.
  EXPECT_NEAR(s.write_fraction, 2.0 / 3.0, 0.01);
  // Flat: every target at depth 3 (/mdtest/rankR/fileF).
  EXPECT_EQ(s.max_depth, 3u);
  EXPECT_NEAR(s.mean_depth, 3.0, 0.01);
  // Perfectly even: top-1% share is ~1% of accesses.
  EXPECT_LT(s.top1pct_share, 0.03);

  // Phase structure: the first ranks*files ops are all creates.
  for (std::size_t i = 0; i < 8u * 50u; ++i) {
    EXPECT_EQ(t.ops[i].type, fsns::OpType::kCreate);
  }
}

}  // namespace
}  // namespace origami::wl

namespace origami::wl {
namespace {

TEST(TraceMixer, GraftsNamespacesAndPreservesOps) {
  TraceMdtestConfig md;
  md.ranks = 4;
  md.files_per_rank = 10;
  md.iterations = 1;
  const Trace a = make_trace_mdtest(md);
  TraceRwConfig rw;
  rw.ops = 500;
  rw.projects = 2;
  rw.modules_per_project = 2;
  rw.sources_per_module = 4;
  rw.headers_shared = 10;
  const Trace b = make_trace_rw(rw);

  const Trace mixed = interleave_traces({&a, &b}, 7, "combo");
  EXPECT_EQ(mixed.name, "combo");
  EXPECT_EQ(mixed.ops.size(), a.ops.size() + b.ops.size());
  // Namespace: both trees plus the two graft points.
  EXPECT_EQ(mixed.tree.size(), a.tree.size() + b.tree.size() + 1);
  // Every op's path is prefixed by its graft dir.
  std::size_t from_a = 0;
  for (const MetaOp& op : mixed.ops) {
    const std::string path = mixed.tree.full_path(op.target);
    ASSERT_TRUE(path.rfind("/mix0/", 0) == 0 || path.rfind("/mix1/", 0) == 0)
        << path;
    if (path.rfind("/mix0/", 0) == 0) ++from_a;
  }
  EXPECT_EQ(from_a, a.ops.size());
  // Per-stream op order is preserved.
  std::vector<fsns::OpType> a_types;
  for (const MetaOp& op : mixed.ops) {
    if (mixed.tree.full_path(op.target).rfind("/mix0/", 0) == 0) {
      a_types.push_back(op.type);
    }
  }
  ASSERT_EQ(a_types.size(), a.ops.size());
  for (std::size_t i = 0; i < a_types.size(); ++i) {
    EXPECT_EQ(a_types[i], a.ops[i].type);
  }
}

TEST(TraceMixer, DeterministicAndHandlesEmpty) {
  TraceRwConfig rw;
  rw.ops = 300;
  rw.projects = 2;
  rw.modules_per_project = 2;
  rw.sources_per_module = 4;
  rw.headers_shared = 10;
  const Trace a = make_trace_rw(rw);
  const Trace m1 = interleave_traces({&a, &a}, 5);
  const Trace m2 = interleave_traces({&a, &a}, 5);
  ASSERT_EQ(m1.ops.size(), m2.ops.size());
  for (std::size_t i = 0; i < m1.ops.size(); ++i) {
    EXPECT_EQ(m1.ops[i].target, m2.ops[i].target);
  }
  const Trace empty = interleave_traces({});
  EXPECT_TRUE(empty.ops.empty());
  EXPECT_EQ(empty.tree.size(), 1u);
}

}  // namespace
}  // namespace origami::wl
