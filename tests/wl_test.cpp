// Tests pinning each workload generator to its paper-described shape
// (§5.1) plus trace (de)serialisation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "origami/common/rng.hpp"
#include "origami/wl/arrival.hpp"
#include "origami/wl/generators.hpp"
#include "origami/wl/trace.hpp"

namespace origami::wl {
namespace {

using fsns::OpType;

TEST(TraceRw, ShapeMatchesCompileWorkload) {
  TraceRwConfig cfg;
  cfg.ops = 60'000;
  const Trace t = make_trace_rw(cfg);
  EXPECT_EQ(t.name, "trace-rw");
  EXPECT_EQ(t.ops.size(), cfg.ops);
  const TraceSummary s = summarize(t);
  // Read-write mix: creates and unlinks present but reads dominate.
  EXPECT_GT(s.write_fraction, 0.10);
  EXPECT_LT(s.write_fraction, 0.50);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kCreate)], 0u);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kStat)], 0u);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kReaddir)], 0u);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kRename)], 0u);
}

TEST(TraceRw, TargetsAreValidAndFilesHaveDirParents) {
  TraceRwConfig cfg;
  cfg.ops = 20'000;
  const Trace t = make_trace_rw(cfg);
  for (const MetaOp& op : t.ops) {
    ASSERT_LT(op.target, t.tree.size());
    if (op.type == OpType::kReaddir) {
      EXPECT_TRUE(t.tree.is_dir(op.target));
    }
    if (op.type == OpType::kRename) {
      ASSERT_NE(op.aux, fsns::kInvalidNode);
      EXPECT_TRUE(t.tree.is_dir(op.aux));
    }
  }
}

TEST(TraceRo, ReadOnlySkewedAndDeep) {
  TraceRoConfig cfg;
  cfg.ops = 60'000;
  const Trace t = make_trace_ro(cfg);
  const TraceSummary s = summarize(t);
  // "only includes read-type operations"
  EXPECT_DOUBLE_EQ(s.write_fraction, 0.0);
  // "extends to a considerable depth" — deeper than ten levels.
  EXPECT_GE(s.max_depth, 11u);
  EXPECT_GT(s.mean_depth, 3.0);
  // "exhibits a significant skew" — top 1% of targets take a large share.
  EXPECT_GT(s.top1pct_share, 0.25);
}

TEST(TraceWi, WriteIntensiveAndDynamic) {
  TraceWiConfig cfg;
  cfg.ops = 60'000;
  const Trace t = make_trace_wi(cfg);
  const TraceSummary s = summarize(t);
  EXPECT_GT(s.write_fraction, 0.60);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kCreate)],
            s.op_counts[static_cast<int>(OpType::kStat)]);

  // Dynamism: the hot tenant set rotates per phase, so the most-hit tenant
  // of the first phase should lose its dominance in a later phase.
  const std::size_t phase_len = t.ops.size() / cfg.phases;
  auto tenant_of = [&](fsns::NodeId node) {
    // /volumes/tenantX/... -> ancestor at depth 2
    auto chain = t.tree.ancestors(node);
    return chain.size() > 2 ? chain[2] : chain.back();
  };
  std::map<fsns::NodeId, int> first_phase;
  std::map<fsns::NodeId, int> later_phase;
  for (std::size_t i = 0; i < phase_len; ++i) {
    ++first_phase[tenant_of(t.ops[i].target)];
  }
  for (std::size_t i = 2 * phase_len; i < 3 * phase_len; ++i) {
    ++later_phase[tenant_of(t.ops[i].target)];
  }
  auto hottest = [](const std::map<fsns::NodeId, int>& m) {
    fsns::NodeId best = 0;
    int n = -1;
    for (auto& [k, v] : m) {
      if (v > n) {
        n = v;
        best = k;
      }
    }
    return best;
  };
  EXPECT_NE(hottest(first_phase), hottest(later_phase));
}

TEST(Generators, DeterministicBySeed) {
  TraceRwConfig cfg;
  cfg.ops = 5'000;
  const Trace a = make_trace_rw(cfg);
  const Trace b = make_trace_rw(cfg);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  ASSERT_EQ(a.tree.size(), b.tree.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].target, b.ops[i].target);
    EXPECT_EQ(a.ops[i].type, b.ops[i].type);
  }
  cfg.seed = 999;
  const Trace c = make_trace_rw(cfg);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    if (a.ops[i].target != c.ops[i].target) ++diff;
  }
  EXPECT_GT(diff, a.ops.size() / 10);
}

TEST(Generators, MotivationTraceIsReadMostly) {
  const Trace t = make_trace_web_motivation(7, 20'000);
  const TraceSummary s = summarize(t);
  EXPECT_DOUBLE_EQ(s.write_fraction, 0.0);
  EXPECT_GT(s.top1pct_share, 0.2);
}

TEST(Summary, CountsAreConsistent) {
  TraceRwConfig cfg;
  cfg.ops = 10'000;
  const Trace t = make_trace_rw(cfg);
  const TraceSummary s = summarize(t);
  std::uint64_t total = 0;
  for (auto c : s.op_counts) total += c;
  EXPECT_EQ(total, s.total_ops);
  EXPECT_EQ(s.total_ops, t.ops.size());
  EXPECT_GT(s.unique_targets, 100u);
  EXPECT_LE(s.unique_targets, t.tree.size());
}

TEST(TraceIo, SaveLoadRoundtrip) {
  TraceWiConfig cfg;
  cfg.ops = 8'000;
  cfg.tenants = 4;
  cfg.dirs_per_tenant = 40;
  const Trace original = make_trace_wi(cfg);
  const std::string path = ::testing::TempDir() + "/origami_trace_rt.bin";
  ASSERT_TRUE(save_trace(original, path).is_ok());

  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  const Trace& t = loaded.value();
  EXPECT_EQ(t.name, original.name);
  ASSERT_EQ(t.tree.size(), original.tree.size());
  ASSERT_EQ(t.ops.size(), original.ops.size());
  for (std::size_t i = 0; i < t.tree.size(); ++i) {
    const auto id = static_cast<fsns::NodeId>(i);
    EXPECT_EQ(t.tree.node(id).parent, original.tree.node(id).parent);
    EXPECT_EQ(t.tree.node(id).name, original.tree.node(id).name);
    EXPECT_EQ(t.tree.is_dir(id), original.tree.is_dir(id));
  }
  for (std::size_t i = 0; i < t.ops.size(); ++i) {
    EXPECT_EQ(t.ops[i].type, original.ops[i].type);
    EXPECT_EQ(t.ops[i].target, original.ops[i].target);
    EXPECT_EQ(t.ops[i].aux, original.ops[i].aux);
    EXPECT_EQ(t.ops[i].data_bytes, original.ops[i].data_bytes);
  }
  // Subtree metadata is rebuilt by finalize() on load.
  EXPECT_EQ(t.tree.node(fsns::kRootNode).subtree_nodes,
            original.tree.node(fsns::kRootNode).subtree_nodes);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadRejectsMissingAndGarbage) {
  EXPECT_FALSE(load_trace("/nonexistent/path.bin").is_ok());
  const std::string path = ::testing::TempDir() + "/origami_trace_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a trace";
  }
  auto r = load_trace(path);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kCorruption);
  std::remove(path.c_str());
}

class TraceSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceSizes, GeneratorsHonorOpsBudget) {
  const std::uint64_t ops = GetParam();
  TraceRwConfig rw;
  rw.ops = ops;
  EXPECT_EQ(make_trace_rw(rw).ops.size(), ops);
  TraceRoConfig ro;
  ro.ops = ops;
  ro.dirs = 2'000;
  ro.files = 8'000;
  EXPECT_EQ(make_trace_ro(ro).ops.size(), ops);
  TraceWiConfig wi;
  wi.ops = ops;
  wi.tenants = 4;
  wi.dirs_per_tenant = 50;
  EXPECT_EQ(make_trace_wi(wi).ops.size(), ops);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TraceSizes,
                         ::testing::Values(1'000, 10'000, 50'000));

}  // namespace
}  // namespace origami::wl

namespace origami::wl {
namespace {

TEST(TraceMdtest, PhasesAndShape) {
  TraceMdtestConfig cfg;
  cfg.ranks = 8;
  cfg.files_per_rank = 50;
  cfg.iterations = 2;
  const Trace t = make_trace_mdtest(cfg);
  EXPECT_EQ(t.ops.size(), 8u * 50u * 3u * 2u);
  const TraceSummary s = summarize(t);
  // create + unlink = 2/3 of ops.
  EXPECT_NEAR(s.write_fraction, 2.0 / 3.0, 0.01);
  // Flat: every target at depth 3 (/mdtest/rankR/fileF).
  EXPECT_EQ(s.max_depth, 3u);
  EXPECT_NEAR(s.mean_depth, 3.0, 0.01);
  // Perfectly even: top-1% share is ~1% of accesses.
  EXPECT_LT(s.top1pct_share, 0.03);

  // Phase structure: the first ranks*files ops are all creates.
  for (std::size_t i = 0; i < 8u * 50u; ++i) {
    EXPECT_EQ(t.ops[i].type, fsns::OpType::kCreate);
  }
}

}  // namespace
}  // namespace origami::wl

namespace origami::wl {
namespace {

TEST(TraceMixer, GraftsNamespacesAndPreservesOps) {
  TraceMdtestConfig md;
  md.ranks = 4;
  md.files_per_rank = 10;
  md.iterations = 1;
  const Trace a = make_trace_mdtest(md);
  TraceRwConfig rw;
  rw.ops = 500;
  rw.projects = 2;
  rw.modules_per_project = 2;
  rw.sources_per_module = 4;
  rw.headers_shared = 10;
  const Trace b = make_trace_rw(rw);

  const Trace mixed = interleave_traces({&a, &b}, 7, "combo");
  EXPECT_EQ(mixed.name, "combo");
  EXPECT_EQ(mixed.ops.size(), a.ops.size() + b.ops.size());
  // Namespace: both trees plus the two graft points.
  EXPECT_EQ(mixed.tree.size(), a.tree.size() + b.tree.size() + 1);
  // Every op's path is prefixed by its graft dir.
  std::size_t from_a = 0;
  for (const MetaOp& op : mixed.ops) {
    const std::string path = mixed.tree.full_path(op.target);
    ASSERT_TRUE(path.rfind("/mix0/", 0) == 0 || path.rfind("/mix1/", 0) == 0)
        << path;
    if (path.rfind("/mix0/", 0) == 0) ++from_a;
  }
  EXPECT_EQ(from_a, a.ops.size());
  // Per-stream op order is preserved.
  std::vector<fsns::OpType> a_types;
  for (const MetaOp& op : mixed.ops) {
    if (mixed.tree.full_path(op.target).rfind("/mix0/", 0) == 0) {
      a_types.push_back(op.type);
    }
  }
  ASSERT_EQ(a_types.size(), a.ops.size());
  for (std::size_t i = 0; i < a_types.size(); ++i) {
    EXPECT_EQ(a_types[i], a.ops[i].type);
  }
}

TEST(TraceMixer, DeterministicAndHandlesEmpty) {
  TraceRwConfig rw;
  rw.ops = 300;
  rw.projects = 2;
  rw.modules_per_project = 2;
  rw.sources_per_module = 4;
  rw.headers_shared = 10;
  const Trace a = make_trace_rw(rw);
  const Trace m1 = interleave_traces({&a, &a}, 5);
  const Trace m2 = interleave_traces({&a, &a}, 5);
  ASSERT_EQ(m1.ops.size(), m2.ops.size());
  for (std::size_t i = 0; i < m1.ops.size(); ++i) {
    EXPECT_EQ(m1.ops[i].target, m2.ops[i].target);
  }
  const Trace empty = interleave_traces({});
  EXPECT_TRUE(empty.ops.empty());
  EXPECT_EQ(empty.tree.size(), 1u);
}

// ------------------------------------------------- timed workload families --

std::string fingerprint(const Trace& t) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto mix = [&](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  };
  for (const MetaOp& op : t.ops) {
    mix(static_cast<std::uint64_t>(op.type));
    mix(op.target);
    mix(op.aux);
    mix(op.data_bytes);
  }
  for (sim::SimTime at : t.arrivals) mix(static_cast<std::uint64_t>(at));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void expect_timed_and_monotone(const Trace& t, std::uint64_t ops) {
  EXPECT_EQ(t.ops.size(), ops);
  ASSERT_TRUE(t.timed());
  ASSERT_EQ(t.arrivals.size(), t.ops.size());
  EXPECT_TRUE(std::is_sorted(t.arrivals.begin(), t.arrivals.end()));
  for (const MetaOp& op : t.ops) ASSERT_LT(op.target, t.tree.size());
}

TEST(TraceFalcon, ReadHeavyPipelineWithNativeTimestamps) {
  TraceFalconConfig cfg;
  cfg.ops = 40'000;
  const Trace t = make_trace_falcon(cfg);
  EXPECT_EQ(t.name, "trace-falcon");
  expect_timed_and_monotone(t, cfg.ops);
  const TraceSummary s = summarize(t);
  // DL data pipeline: scan storms + shuffled reads dominate, checkpoints
  // contribute the only writes.
  EXPECT_LT(s.write_fraction, 0.30);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kReaddir)], 0u);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kStat)],
            s.op_counts[static_cast<int>(OpType::kCreate)]);
}

TEST(TraceFalcon, BarriersLeaveLargeGapsInTheArrivalProcess) {
  TraceFalconConfig cfg;
  cfg.ops = 40'000;
  const Trace t = make_trace_falcon(cfg);
  std::vector<sim::SimTime> gaps;
  gaps.reserve(t.arrivals.size() - 1);
  for (std::size_t i = 1; i < t.arrivals.size(); ++i) {
    gaps.push_back(t.arrivals[i] - t.arrivals[i - 1]);
  }
  std::vector<sim::SimTime> sorted = gaps;
  std::sort(sorted.begin(), sorted.end());
  const sim::SimTime median = sorted[sorted.size() / 2];
  const sim::SimTime widest = sorted.back();
  // The 5 ms epoch barriers dwarf the per-op service gaps.
  EXPECT_GE(widest, sim::millis(5));
  EXPECT_GE(widest, 20 * std::max<sim::SimTime>(1, median));
}

TEST(TraceMidas, WriteHeavyBurstsWithNativeTimestamps) {
  TraceMidasConfig cfg;
  cfg.ops = 40'000;
  const Trace t = make_trace_midas(cfg);
  EXPECT_EQ(t.name, "trace-midas");
  expect_timed_and_monotone(t, cfg.ops);
  const TraceSummary s = summarize(t);
  // HPC burst: job storms are create/unlink-heavy.
  EXPECT_GT(s.write_fraction, 0.50);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kCreate)], 0u);
  EXPECT_GT(s.op_counts[static_cast<int>(OpType::kReaddir)], 0u);
}

TEST(TraceMidas, OnOffLoadShowsUpAsRateContrast) {
  TraceMidasConfig cfg;
  cfg.ops = 40'000;
  const Trace t = make_trace_midas(cfg);
  // Background segments run at base_rate, storms at burst_rate (20x): the
  // gap distribution must be strongly bimodal — the widest decile of gaps
  // is far wider than the median.
  std::vector<sim::SimTime> gaps;
  for (std::size_t i = 1; i < t.arrivals.size(); ++i) {
    gaps.push_back(t.arrivals[i] - t.arrivals[i - 1]);
  }
  std::sort(gaps.begin(), gaps.end());
  const sim::SimTime median = gaps[gaps.size() / 2];
  const sim::SimTime p90 = gaps[gaps.size() * 9 / 10];
  EXPECT_GE(p90, 5 * std::max<sim::SimTime>(1, median));
}

TEST(TraceFamilies, DeterministicPerSeed) {
  TraceFalconConfig f;
  f.ops = 20'000;
  EXPECT_EQ(fingerprint(make_trace_falcon(f)),
            fingerprint(make_trace_falcon(f)));
  TraceFalconConfig f2 = f;
  f2.seed += 1;
  EXPECT_NE(fingerprint(make_trace_falcon(f)),
            fingerprint(make_trace_falcon(f2)));

  TraceMidasConfig m;
  m.ops = 20'000;
  EXPECT_EQ(fingerprint(make_trace_midas(m)),
            fingerprint(make_trace_midas(m)));
  TraceMidasConfig m2 = m;
  m2.seed += 1;
  EXPECT_NE(fingerprint(make_trace_midas(m)),
            fingerprint(make_trace_midas(m2)));
}

// ------------------------------------------------ timed trace (de)serialise --

TEST(TraceIo, V2RoundtripPreservesArrivalTimestamps) {
  TraceFalconConfig cfg;
  cfg.ops = 5'000;
  const Trace t = make_trace_falcon(cfg);
  ASSERT_TRUE(t.timed());
  const std::string path = ::testing::TempDir() + "/origami_trace_timed.bin";
  ASSERT_TRUE(save_trace(t, path).is_ok());
  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  const Trace& back = loaded.value();
  ASSERT_TRUE(back.timed());
  EXPECT_EQ(back.arrivals, t.arrivals);
  EXPECT_EQ(fingerprint(back), fingerprint(t));
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMismatchedArrivalTable) {
  Trace t;
  t.name = "bad-arrivals";
  const fsns::NodeId f = t.tree.add_file(0, "f");
  t.tree.finalize();
  t.ops.assign(3, MetaOp{OpType::kStat, f, 0, 0});
  t.arrivals = {10, 20};  // 2 arrivals for 3 ops
  const std::string path = ::testing::TempDir() + "/origami_trace_mismatch.bin";
  ASSERT_TRUE(save_trace(t, path).is_ok());
  auto loaded = load_trace(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.status().to_string().find("arrival table size mismatch"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsDecreasingArrivalTimestamps) {
  Trace t;
  t.name = "time-travel";
  const fsns::NodeId f = t.tree.add_file(0, "f");
  t.tree.finalize();
  t.ops.assign(3, MetaOp{OpType::kStat, f, 0, 0});
  t.arrivals = {5, 3, 9};
  const std::string path = ::testing::TempDir() + "/origami_trace_decr.bin";
  ASSERT_TRUE(save_trace(t, path).is_ok());
  auto loaded = load_trace(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_NE(loaded.status().to_string().find("invalid arrival record"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceIo, LoadsVersion1FilesWithoutArrivalTable) {
  // Handcraft a version-1 stream: identical layout up to the op table, no
  // arrival section at the end. Old trace files must keep loading.
  const std::string path = ::testing::TempDir() + "/origami_trace_v1.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    auto put_u32 = [&](std::uint32_t v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof v);
    };
    auto put_u64 = [&](std::uint64_t v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof v);
    };
    auto put_u8 = [&](std::uint8_t v) {
      out.write(reinterpret_cast<const char*>(&v), sizeof v);
    };
    auto put_str = [&](const std::string& s) {
      put_u32(static_cast<std::uint32_t>(s.size()));
      out.write(s.data(), static_cast<std::streamsize>(s.size()));
    };
    put_u32(0x4f524754);  // "ORGT"
    put_u32(1);           // version 1: no arrival table
    put_str("legacy-v1");
    put_u64(2);  // nodes: root + one file
    put_u32(0);  // node 1: parent = root
    put_u8(0);   //         file
    put_str("f");
    put_u64(2);  // two ops targeting node 1
    for (int i = 0; i < 2; ++i) {
      put_u8(static_cast<std::uint8_t>(OpType::kStat));
      put_u32(1);  // target
      put_u32(0);  // aux
      put_u32(0);  // data_bytes
    }
    ASSERT_TRUE(out.good());
  }
  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  const Trace& t = loaded.value();
  EXPECT_EQ(t.name, "legacy-v1");
  EXPECT_EQ(t.ops.size(), 2u);
  EXPECT_TRUE(t.arrivals.empty());
  EXPECT_FALSE(t.timed());
  std::remove(path.c_str());
}

// ----------------------------------------- arrival-process statistics --

std::unique_ptr<ArrivalPolicy> make_arrival(const std::string& spec,
                                            const ArrivalContext& ctx = {}) {
  auto made = ArrivalRegistry::builtin().make(spec, ctx);
  EXPECT_TRUE(made.is_ok()) << made.status().to_string();
  return std::move(made).value();
}

/// Drives an open-loop policy the way the engines do: chained absolute
/// arrival times, one call per op index.
std::vector<sim::SimTime> drive(ArrivalPolicy& p, std::uint64_t n) {
  common::Xoshiro256 engine_rng(42);
  std::vector<sim::SimTime> at;
  at.reserve(n);
  at.push_back(p.first_arrival());
  for (std::uint64_t i = 1; i < n; ++i) {
    at.push_back(p.next_arrival(i, at.back(), engine_rng));
  }
  return at;
}

TEST(BurstyArrivalStats, OverdispersedAboveBaseRateAndSeeded) {
  // Short period so the sample spans many diurnal cycles: rate 50k, 100 ms
  // period, 10 ms spikes at 20x with probability 1/2 -> expected average
  // envelope = 50k * (1 + 0.5*0.1*19) ~ 97.5k ops/s.
  const std::string spec =
      "bursty:rate=50000,period-ms=100,amp=0.9,spike-prob=0.5,"
      "spike-mult=20,spike-ms=10,seed=7";
  auto p = make_arrival(spec);
  const std::uint64_t n = 200'000;
  const std::vector<sim::SimTime> at = drive(*p, n);

  ASSERT_TRUE(std::is_sorted(at.begin(), at.end()));
  for (std::size_t i = 1; i < at.size(); ++i) ASSERT_GT(at[i], at[i - 1]);

  const double span_s =
      static_cast<double>(at.back() - at.front()) / sim::kSecond;
  const double mean_rate = static_cast<double>(n - 1) / span_s;
  // Long-run mean sits between the base rate and the spike envelope.
  EXPECT_GT(mean_rate, 50'000.0 * 1.2);
  EXPECT_LT(mean_rate, 50'000.0 * 2.6);

  // Inter-arrival overdispersion: a homogeneous Poisson process has
  // CV = 1; the sinusoid + spike mixture must push it well above.
  double mean_gap = 0.0;
  for (std::size_t i = 1; i < at.size(); ++i) {
    mean_gap += static_cast<double>(at[i] - at[i - 1]);
  }
  mean_gap /= static_cast<double>(n - 1);
  double var = 0.0;
  for (std::size_t i = 1; i < at.size(); ++i) {
    const double d = static_cast<double>(at[i] - at[i - 1]) - mean_gap;
    var += d * d;
  }
  var /= static_cast<double>(n - 2);
  const double cv = std::sqrt(var) / mean_gap;
  EXPECT_GT(cv, 1.1);

  // The process owns its randomness: same seed -> identical sequence
  // (regardless of the engine stream), different seed -> different.
  auto p_again = make_arrival(spec);
  EXPECT_EQ(drive(*p_again, 5'000),
            std::vector<sim::SimTime>(at.begin(), at.begin() + 5'000));
  auto p_other = make_arrival(
      "bursty:rate=50000,period-ms=100,amp=0.9,spike-prob=0.5,"
      "spike-mult=20,spike-ms=10,seed=8");
  EXPECT_NE(drive(*p_other, 5'000),
            std::vector<sim::SimTime>(at.begin(), at.begin() + 5'000));
}

TEST(TenantArrivalStats, PerTenantTokenBucketHoldsInEveryWindow) {
  const std::uint32_t tenants = 4;
  const std::uint64_t rate = 1'000;  // ops/s per tenant
  const std::uint64_t burst = 4;
  auto p = make_arrival("tenant:tenants=4,rate=1000,burst=4");
  const std::uint64_t n = 16'000;
  const std::vector<sim::SimTime> at = drive(*p, n);
  ASSERT_TRUE(std::is_sorted(at.begin(), at.end()));

  std::vector<std::vector<sim::SimTime>> lanes(tenants);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t c = p->client_of(i);
    EXPECT_EQ(c, static_cast<std::uint32_t>(i % tenants));  // round-robin
    lanes[c].push_back(at[i]);
  }
  // Token bucket invariant: any window of one second admits at most
  // rate + burst ops per tenant, i.e. the (rate+burst)-th op after any op
  // lands at least ~1 s later (small slack for integer rounding).
  const auto window_ops = static_cast<std::size_t>(rate + burst);
  for (const auto& lane : lanes) {
    ASSERT_GT(lane.size(), window_ops);
    for (std::size_t i = 0; i + window_ops < lane.size(); ++i) {
      EXPECT_GE(lane[i + window_ops] - lane[i],
                static_cast<sim::SimTime>(0.98 * sim::kSecond));
    }
  }
}

TEST(TraceArrivalStats, ReplaysNativeTimestampsExactly) {
  TraceFalconConfig cfg;
  cfg.ops = 4'000;
  const Trace t = make_trace_falcon(cfg);
  ArrivalContext ctx;
  ctx.trace = &t;
  ctx.clients = 1;
  auto p = make_arrival("trace", ctx);
  common::Xoshiro256 engine_rng(42);
  sim::SimTime prev = p->first_arrival();
  EXPECT_EQ(prev, t.arrivals.front());
  for (std::uint64_t i = 1; i < t.ops.size(); ++i) {
    prev = p->next_arrival(i, prev, engine_rng);
    EXPECT_EQ(prev, t.arrivals[i]) << "op " << i;
  }
}

TEST(TraceArrivalStats, SpeedScalesTheTimelineAndWrapPreservesGaps) {
  TraceFalconConfig cfg;
  cfg.ops = 2'000;
  const Trace t = make_trace_falcon(cfg);
  ArrivalContext ctx;
  ctx.trace = &t;
  ctx.clients = 1;

  auto fast = make_arrival("trace:speed=2", ctx);
  common::Xoshiro256 engine_rng(42);
  sim::SimTime prev = fast->first_arrival();
  EXPECT_EQ(prev, static_cast<sim::SimTime>(
                      static_cast<double>(t.arrivals.front()) / 2.0));
  for (std::uint64_t i = 1; i < t.ops.size(); ++i) {
    prev = fast->next_arrival(i, prev, engine_rng);
    EXPECT_EQ(prev, static_cast<sim::SimTime>(
                        static_cast<double>(t.arrivals[i]) / 2.0))
        << "op " << i;
  }

  // Looping past the end restarts the timeline one tick after the last
  // arrival of the previous pass, preserving every relative gap.
  auto looped = make_arrival("trace", ctx);
  const std::uint64_t n = t.ops.size();
  sim::SimTime cur = looped->first_arrival();
  for (std::uint64_t i = 1; i < n; ++i) {
    cur = looped->next_arrival(i, cur, engine_rng);
  }
  const sim::SimTime last_first_pass = cur;
  const sim::SimTime second_pass_start =
      looped->next_arrival(n, last_first_pass, engine_rng);
  EXPECT_EQ(second_pass_start, last_first_pass + 1);
  cur = second_pass_start;
  for (std::uint64_t j = 1; j < n; ++j) {
    cur = looped->next_arrival(n + j, cur, engine_rng);
    EXPECT_EQ(cur - second_pass_start, t.arrivals[j] - t.arrivals[0])
        << "wrapped op " << j;
  }
}

}  // namespace
}  // namespace origami::wl
