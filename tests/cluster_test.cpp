// Tests for the DES replay engine: completion, RPC accounting, caching,
// epochs, determinism, static partitioners, data path.
#include <gtest/gtest.h>

#include "origami/cluster/replay.hpp"
#include "origami/common/flags.hpp"
#include "origami/wl/generators.hpp"

namespace origami::cluster {
namespace {

wl::Trace tiny_trace(std::uint64_t ops = 20'000) {
  wl::TraceRwConfig cfg;
  cfg.ops = ops;
  cfg.projects = 6;
  cfg.modules_per_project = 4;
  cfg.sources_per_module = 10;
  cfg.headers_shared = 100;
  return wl::make_trace_rw(cfg);
}

ReplayOptions fast_options() {
  ReplayOptions opt;
  opt.mds_count = 3;
  opt.clients = 16;
  opt.epoch_length = sim::millis(100);
  opt.warmup_epochs = 2;
  opt.net_params.jitter_frac = 0.0;  // exact determinism for tests
  return opt;
}

TEST(Replay, CompletesAllOps) {
  const wl::Trace trace = tiny_trace();
  ReplayOptions opt = fast_options();
  StaticBalancer balancer(StaticBalancer::Kind::kSingle);
  const RunResult r = replay_trace(trace, opt, balancer);
  EXPECT_EQ(r.completed_ops, trace.ops.size());
  EXPECT_GT(r.makespan, 0);
  EXPECT_GT(r.throughput_ops, 0.0);
  EXPECT_EQ(r.balancer_name, "single");
  EXPECT_EQ(r.mds_count, 3u);
}

TEST(Replay, SingleMdsWithCacheIsOneRpcPerRequest) {
  const wl::Trace trace = tiny_trace(10'000);
  ReplayOptions opt = fast_options();
  opt.mds_count = 1;
  StaticBalancer balancer(StaticBalancer::Kind::kSingle);
  const RunResult r = replay_trace(trace, opt, balancer);
  // Everything is local: exactly one visit per request.
  EXPECT_DOUBLE_EQ(r.rpc_per_request, 1.0);
  EXPECT_EQ(r.forwarded_requests, 0u);
}

TEST(Replay, FineHashForwardsMoreThanCoarse) {
  const wl::Trace trace = tiny_trace();
  ReplayOptions opt = fast_options();
  StaticBalancer coarse(StaticBalancer::Kind::kCoarseHash);
  StaticBalancer fine(StaticBalancer::Kind::kFineHash);
  const RunResult rc = replay_trace(trace, opt, coarse);
  const RunResult rf = replay_trace(trace, opt, fine);
  EXPECT_GT(rf.rpc_per_request, rc.rpc_per_request);
  EXPECT_GT(rf.forwarded_requests, 0u);
}

TEST(Replay, CacheReducesRpcs) {
  const wl::Trace trace = tiny_trace();
  ReplayOptions with_cache = fast_options();
  ReplayOptions no_cache = fast_options();
  no_cache.cache_enabled = false;
  StaticBalancer b1(StaticBalancer::Kind::kFineHash);
  StaticBalancer b2(StaticBalancer::Kind::kFineHash);
  const RunResult rc = replay_trace(trace, with_cache, b1);
  const RunResult rn = replay_trace(trace, no_cache, b2);
  EXPECT_LT(rc.rpc_per_request, rn.rpc_per_request);
  EXPECT_GT(rc.cache.hits, 0u);
  EXPECT_EQ(rn.cache.hits, 0u);
  // Caching also improves throughput (Table 2's headline effect).
  EXPECT_GT(rc.throughput_ops, rn.throughput_ops);
}

TEST(Replay, DeterministicAcrossRuns) {
  const wl::Trace trace = tiny_trace(8'000);
  ReplayOptions opt = fast_options();
  opt.net_params.jitter_frac = 0.05;  // jitter is seeded, still deterministic
  StaticBalancer b1(StaticBalancer::Kind::kCoarseHash);
  StaticBalancer b2(StaticBalancer::Kind::kCoarseHash);
  const RunResult a = replay_trace(trace, opt, b1);
  const RunResult b = replay_trace(trace, opt, b2);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_rpcs, b.total_rpcs);
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_DOUBLE_EQ(a.throughput_ops, b.throughput_ops);
}

TEST(Replay, EpochsAreRecordedWithMdsBreakdown) {
  const wl::Trace trace = tiny_trace();
  ReplayOptions opt = fast_options();
  StaticBalancer balancer(StaticBalancer::Kind::kCoarseHash);
  const RunResult r = replay_trace(trace, opt, balancer);
  ASSERT_GT(r.epochs.size(), 2u);
  std::uint64_t epoch_ops = 0;
  for (const EpochMetrics& em : r.epochs) {
    ASSERT_EQ(em.mds.size(), 3u);
    EXPECT_GE(em.end, em.start);
    for (const auto& m : em.mds) epoch_ops += m.ops;
  }
  // All executed ops fall into some epoch (last partial epoch may be cut).
  EXPECT_LE(epoch_ops, r.completed_ops);
  EXPECT_GT(epoch_ops, r.completed_ops * 8 / 10);
}

TEST(Replay, MoreClientsMoreThroughputUntilSaturation) {
  const wl::Trace trace = tiny_trace();
  ReplayOptions low = fast_options();
  low.clients = 1;
  ReplayOptions high = fast_options();
  high.clients = 32;
  StaticBalancer b1(StaticBalancer::Kind::kSingle);
  StaticBalancer b2(StaticBalancer::Kind::kSingle);
  const RunResult rl = replay_trace(trace, low, b1);
  const RunResult rh = replay_trace(trace, high, b2);
  EXPECT_GT(rh.throughput_ops, rl.throughput_ops * 2);
}

TEST(Replay, SingleClientLatencyIsServicePlusNetwork) {
  const wl::Trace trace = tiny_trace(5'000);
  ReplayOptions opt = fast_options();
  opt.mds_count = 1;
  opt.clients = 1;
  StaticBalancer balancer(StaticBalancer::Kind::kSingle);
  const RunResult r = replay_trace(trace, opt, balancer);
  // No queueing with one client: latency ~ rtt + service, well under 1ms.
  EXPECT_GT(r.mean_latency_us, 100.0);
  EXPECT_LT(r.mean_latency_us, 1000.0);
  EXPECT_GE(r.p99_latency_us, r.p50_latency_us);
}

TEST(Replay, TimeLimitCutsRunAndLoops) {
  const wl::Trace trace = tiny_trace(2'000);  // short trace
  ReplayOptions opt = fast_options();
  opt.loop_trace = true;
  opt.time_limit = sim::seconds(2);
  StaticBalancer balancer(StaticBalancer::Kind::kCoarseHash);
  const RunResult r = replay_trace(trace, opt, balancer);
  // The 2k-op trace must have been replayed several times over 2 seconds.
  EXPECT_GT(r.completed_ops, 4'000u);
  EXPECT_LE(r.makespan, sim::seconds(2) + sim::millis(100));
}

TEST(Replay, ImbalanceFactorsWithinRange) {
  const wl::Trace trace = tiny_trace();
  ReplayOptions opt = fast_options();
  StaticBalancer balancer(StaticBalancer::Kind::kFineHash);
  const RunResult r = replay_trace(trace, opt, balancer);
  for (double f : {r.imf_qps, r.imf_rpc, r.imf_inodes, r.imf_busy}) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(Replay, DataPathAddsLatencyAndTracksBytes) {
  const wl::Trace trace = tiny_trace(10'000);
  ReplayOptions meta_only = fast_options();
  ReplayOptions with_data = fast_options();
  with_data.data_path = true;
  StaticBalancer b1(StaticBalancer::Kind::kCoarseHash);
  StaticBalancer b2(StaticBalancer::Kind::kCoarseHash);
  const RunResult rm = replay_trace(trace, meta_only, b1);
  const RunResult rd = replay_trace(trace, with_data, b2);
  EXPECT_EQ(rm.data_requests, 0u);
  EXPECT_GT(rd.data_requests, 0u);
  EXPECT_GT(rd.data_throughput_mb_s, 0.0);
  // End-to-end throughput is below metadata-only (Fig. 9b vs 9a).
  EXPECT_LT(rd.throughput_ops, rm.throughput_ops);
}

TEST(Replay, KvBackingExecutesRealStoreOps) {
  const wl::Trace trace = tiny_trace(5'000);
  ReplayOptions opt = fast_options();
  opt.kv_backing = true;
  StaticBalancer balancer(StaticBalancer::Kind::kCoarseHash);
  const RunResult r = replay_trace(trace, opt, balancer);
  EXPECT_EQ(r.completed_ops, trace.ops.size());
}

// A balancer that migrates one fixed subtree at the first epoch, to test
// the Migrator path of the replay engine.
class OneShotMigrator final : public Balancer {
 public:
  explicit OneShotMigrator(fsns::NodeId subtree) : subtree_(subtree) {}
  [[nodiscard]] std::string name() const override { return "one-shot"; }
  std::vector<MigrationDecision> rebalance(const EpochSnapshot& snap,
                                           const fsns::DirTree&,
                                           const mds::PartitionMap& map) override {
    if (fired_ || snap.epoch < 1) return {};
    fired_ = true;
    return {{subtree_, map.dir_owner(subtree_), 1, 1.0}};
  }
  bool fired_ = false;
  fsns::NodeId subtree_;
};

TEST(Replay, MigrationsAreExecutedAndCounted) {
  const wl::Trace trace = tiny_trace();
  // Pick some project directory (child of /src).
  const auto& root_children = trace.tree.node(fsns::kRootNode).children;
  const fsns::NodeId src = root_children[0];
  const fsns::NodeId proj = trace.tree.node(src).children[0];

  ReplayOptions opt = fast_options();
  OneShotMigrator balancer(proj);
  const RunResult r = replay_trace(trace, opt, balancer);
  EXPECT_EQ(r.migrations, 1u);
  EXPECT_GT(r.inodes_migrated, 0u);
  // After migration some requests must be routed to MDS 1.
  std::uint64_t mds1_ops = 0;
  for (const auto& em : r.epochs) mds1_ops += em.mds[1].ops;
  EXPECT_GT(mds1_ops, 0u);
}

TEST(Replay, StaleCacheForwardsAfterMigration) {
  const wl::Trace trace = tiny_trace();
  const auto& root_children = trace.tree.node(fsns::kRootNode).children;
  const fsns::NodeId src = root_children[0];

  ReplayOptions opt = fast_options();
  opt.cache_depth = 4;  // project dirs are cacheable
  OneShotMigrator balancer(src);
  const RunResult r = replay_trace(trace, opt, balancer);
  EXPECT_GT(r.cache.stale, 0u);
}

// --------------------------------------------------------- shared CLI flags --

common::Result<ReplayOptions> parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"test"};
  argv.insert(argv.end(), args.begin(), args.end());
  const common::Flags flags(static_cast<int>(argv.size()), argv.data());
  return options_from_flags(flags);
}

TEST(OptionsFromFlags, ParsesCommitVocabulary) {
  auto parsed = parse({"--fault-crash-prob", "0.1", "--commit-mode", "async",
                       "--commit-window", "1.5", "--commit-batch", "32"});
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const ReplayOptions opt = std::move(parsed).value();
  EXPECT_EQ(opt.recovery.commit_mode, recovery::CommitMode::kAsync);
  EXPECT_EQ(opt.recovery.commit_window, sim::millis(1.5));
  EXPECT_EQ(opt.recovery.commit_batch, 32u);

  auto sync = parse({"--commit-mode", "sync"});
  ASSERT_TRUE(sync.is_ok());
  EXPECT_EQ(std::move(sync).value().recovery.commit_mode,
            recovery::CommitMode::kSync);
}

TEST(OptionsFromFlags, RejectsUnknownOwnedFlags) {
  // A typo inside the owned --fault-*/--retry-*/--commit-* prefixes must
  // fail fast, naming every offender — not silently run a different
  // experiment under the right label.
  auto parsed = parse({"--fault-crash-prb", "0.1", "--commit-windw", "2"});
  ASSERT_FALSE(parsed.is_ok());
  const std::string msg = parsed.status().to_string();
  EXPECT_NE(msg.find("--fault-crash-prb"), std::string::npos) << msg;
  EXPECT_NE(msg.find("--commit-windw"), std::string::npos) << msg;

  // Flags outside the owned prefixes belong to the caller: not an error.
  auto foreign = parse({"--smoke", "--ops", "1000"});
  EXPECT_TRUE(foreign.is_ok());
}

TEST(OptionsFromFlags, RejectsBadCommitMode) {
  auto parsed = parse({"--commit-mode", "eventually"});
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().to_string().find("eventually"), std::string::npos);
}

TEST(OptionsFromFlags, AsyncKvBackingRequiresWritableWalDir) {
  // Async group commit over the real store fsyncs a real log; without a
  // writable --kv-wal-dir the measured-durability contract is meaningless,
  // so the combination must fail fast instead of silently running with an
  // in-memory WAL.
  auto parsed = parse({"--kv-backing", "--commit-mode", "async"});
  ASSERT_FALSE(parsed.is_ok());
  EXPECT_NE(parsed.status().to_string().find("--kv-wal-dir"),
            std::string::npos)
      << parsed.status().to_string();

  const std::string dir = ::testing::TempDir();
  auto with_dir = parse(
      {"--kv-backing", "--commit-mode", "async", "--kv-wal-dir", dir.c_str()});
  ASSERT_TRUE(with_dir.is_ok()) << with_dir.status().to_string();
  EXPECT_EQ(std::move(with_dir).value().kv_wal_dir, dir);

  auto bad_dir = parse({"--kv-backing", "--commit-mode", "async",
                        "--kv-wal-dir", "/nonexistent/origami/wal/dir"});
  ASSERT_FALSE(bad_dir.is_ok());
  EXPECT_NE(bad_dir.status().to_string().find("not a writable"),
            std::string::npos)
      << bad_dir.status().to_string();
}

TEST(OptionsFromFlags, ParsesAndStrictlyValidatesShardThreads) {
  auto parsed = parse({"--shard-threads", "8"});
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(std::move(parsed).value().shard_threads, 8u);

  auto absent = parse({"--mds", "4"});
  ASSERT_TRUE(absent.is_ok());
  EXPECT_EQ(std::move(absent).value().shard_threads, 1u);

  // get_int would coerce all of these to 0 and silently serve on one
  // thread; the strict parser must reject them instead.
  for (const char* bad : {"0", "-2", "abc", "2x", ""}) {
    auto r = parse({"--shard-threads", bad});
    ASSERT_FALSE(r.is_ok()) << "accepted --shard-threads '" << bad << "'";
    EXPECT_NE(r.status().to_string().find("--shard-threads"),
              std::string::npos);
  }
}

TEST(OptionsFromFlags, KvWalDirOptionalOutsideAsyncKvBacking) {
  // Sync mode appends every record inline — no group commit, no fsync
  // batching — so the real store runs fine without a log directory.
  auto sync_kv = parse({"--kv-backing", "--commit-mode", "sync"});
  EXPECT_TRUE(sync_kv.is_ok()) << sync_kv.status().to_string();

  // Async without the real store only drives the modeled journal.
  auto async_model = parse({"--commit-mode", "async"});
  EXPECT_TRUE(async_model.is_ok()) << async_model.status().to_string();
}

}  // namespace
}  // namespace origami::cluster
