// Property tests over the replay engine: conservation, metric sanity and
// determinism invariants that must hold for every (workload, strategy)
// combination.
#include <gtest/gtest.h>

#include <tuple>

#include "origami/cluster/replay.hpp"
#include "origami/core/balancers.hpp"
#include "origami/wl/generators.hpp"

namespace origami {
namespace {

using cluster::ReplayOptions;
using cluster::RunResult;

enum class Wl { kRw, kRo, kWi };
enum class St { kSingle, kCHash, kFHash, kMetaOpt };

wl::Trace make_workload(Wl which, std::uint64_t seed) {
  constexpr std::uint64_t kOps = 30'000;
  switch (which) {
    case Wl::kRw: {
      wl::TraceRwConfig cfg;
      cfg.ops = kOps;
      cfg.seed = seed;
      cfg.projects = 6;
      cfg.modules_per_project = 4;
      cfg.sources_per_module = 8;
      cfg.headers_shared = 60;
      return wl::make_trace_rw(cfg);
    }
    case Wl::kRo: {
      wl::TraceRoConfig cfg;
      cfg.ops = kOps;
      cfg.seed = seed;
      cfg.dirs = 3'000;
      cfg.files = 12'000;
      return wl::make_trace_ro(cfg);
    }
    case Wl::kWi: {
      wl::TraceWiConfig cfg;
      cfg.ops = kOps;
      cfg.seed = seed;
      cfg.tenants = 8;
      cfg.dirs_per_tenant = 80;
      return wl::make_trace_wi(cfg);
    }
  }
  return {};
}

RunResult run(const wl::Trace& trace, St strategy, const ReplayOptions& opt) {
  switch (strategy) {
    case St::kSingle: {
      cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kSingle);
      return cluster::replay_trace(trace, opt, b);
    }
    case St::kCHash: {
      cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kCoarseHash);
      return cluster::replay_trace(trace, opt, b);
    }
    case St::kFHash: {
      cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kFineHash);
      return cluster::replay_trace(trace, opt, b);
    }
    case St::kMetaOpt: {
      core::MetaOptParams p;
      p.min_subtree_ops = 8;
      p.stop_threshold = sim::micros(500);
      core::MetaOptOracleBalancer b(cost::CostModel{opt.cost_params}, p,
                                    core::RebalanceTrigger{0.05});
      return cluster::replay_trace(trace, opt, b);
    }
  }
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kSingle);
  return cluster::replay_trace(trace, opt, b);
}

class ReplayInvariants : public ::testing::TestWithParam<std::tuple<Wl, St>> {};

TEST_P(ReplayInvariants, Hold) {
  const auto [which, strategy] = GetParam();
  const wl::Trace trace = make_workload(which, 5);
  ReplayOptions opt;
  opt.mds_count = 4;
  opt.clients = 24;
  opt.epoch_length = sim::millis(200);
  opt.warmup_epochs = 2;
  const RunResult r = run(trace, strategy, opt);

  // 1. No operation is lost or duplicated.
  EXPECT_EQ(r.completed_ops, trace.ops.size());

  // 2. Every executed op landed in some epoch or the post-final remainder.
  std::uint64_t epoch_ops = 0;
  std::uint64_t epoch_rpcs = 0;
  for (const auto& em : r.epochs) {
    ASSERT_EQ(em.mds.size(), opt.mds_count);
    EXPECT_GE(em.end, em.start);
    std::uint64_t inode_total = 0;
    for (const auto& m : em.mds) {
      epoch_ops += m.ops;
      epoch_rpcs += m.rpcs;
      inode_total += m.inodes;
    }
    // 3. Inode ownership is conserved within every epoch snapshot.
    EXPECT_EQ(inode_total, trace.tree.size());
  }
  EXPECT_LE(epoch_ops, r.completed_ops);
  EXPECT_LE(epoch_rpcs, r.total_rpcs);

  // 4. RPC accounting: at least one visit per request; forwarded requests
  //    are a subset of all requests.
  EXPECT_GE(r.total_rpcs, r.completed_ops);
  EXPECT_LE(r.forwarded_requests, r.completed_ops);
  EXPECT_GE(r.rpc_per_request, 1.0);

  // 5. Latency metrics are ordered and positive.
  EXPECT_GT(r.mean_latency_us, 0.0);
  EXPECT_LE(r.p50_latency_us, r.p99_latency_us + 1e-9);
  EXPECT_GT(r.makespan, 0);

  // 6. Imbalance factors stay within [0, 1].
  for (double f : {r.imf_qps, r.imf_rpc, r.imf_inodes, r.imf_busy}) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }

  // 7. Migration accounting is consistent.
  if (r.migrations == 0) {
    EXPECT_EQ(r.inodes_migrated, 0u);
  } else {
    EXPECT_GT(r.inodes_migrated, 0u);
  }

  // 8. The captured final partition is well-formed.
  ASSERT_EQ(r.final_dir_owner.size(), trace.tree.size());
  for (auto owner : r.final_dir_owner) EXPECT_LT(owner, opt.mds_count);

  // 9. Replaying the captured partition (frozen) also completes everything.
  cluster::FixedPartitionBalancer frozen(r);
  ReplayOptions probe = opt;
  probe.clients = 4;
  const RunResult rp = cluster::replay_trace(trace, probe, frozen);
  EXPECT_EQ(rp.completed_ops, trace.ops.size());
  EXPECT_EQ(rp.migrations, 0u);
}

std::string param_name(const ::testing::TestParamInfo<std::tuple<Wl, St>>& info) {
  static constexpr const char* kWl[] = {"Rw", "Ro", "Wi"};
  static constexpr const char* kSt[] = {"Single", "CHash", "FHash", "MetaOpt"};
  return std::string(kWl[static_cast<int>(std::get<0>(info.param))]) +
         kSt[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ReplayInvariants,
    ::testing::Combine(::testing::Values(Wl::kRw, Wl::kRo, Wl::kWi),
                       ::testing::Values(St::kSingle, St::kCHash, St::kFHash,
                                         St::kMetaOpt)),
    param_name);

TEST(ReplayDeterminism, IdenticalAcrossRepeats) {
  const wl::Trace trace = make_workload(Wl::kWi, 9);
  ReplayOptions opt;
  opt.mds_count = 3;
  opt.clients = 16;
  opt.epoch_length = sim::millis(200);
  for (St strategy : {St::kCHash, St::kMetaOpt}) {
    const RunResult a = run(trace, strategy, opt);
    const RunResult b = run(trace, strategy, opt);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.total_rpcs, b.total_rpcs);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.final_dir_owner, b.final_dir_owner);
  }
}

TEST(ReplayLatencyProbe, FHashProbeKeepsHashedFileInodes) {
  const wl::Trace trace = make_workload(Wl::kRw, 3);
  ReplayOptions opt;
  opt.mds_count = 4;
  opt.clients = 16;
  opt.epoch_length = sim::millis(200);
  const RunResult hot = run(trace, St::kFHash, opt);
  EXPECT_TRUE(hot.hash_file_inodes);

  cluster::FixedPartitionBalancer frozen(hot);
  ReplayOptions probe = opt;
  probe.clients = 1;
  const RunResult cold = cluster::replay_trace(trace, probe, frozen);
  // The probe must reproduce fine-grained routing: forwarding persists.
  EXPECT_GT(cold.rpc_per_request, 1.2);
}

}  // namespace
}  // namespace origami
