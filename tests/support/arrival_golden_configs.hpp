#pragma once

// The exact workloads and option sets behind the arrival-plane golden
// fingerprints. tools/arrival_goldens.cpp captured these against the
// pre-refactor tree (hard-coded closed/open loops inside the engines);
// tests/arrival_test.cpp replays them through the ArrivalPolicy plane and
// demands the same bytes. Change anything here and the committed goldens
// are void — regenerate with the tool and re-audit the diff.

#include <cstdint>

#include "origami/cluster/options.hpp"
#include "origami/fs/live_replay.hpp"
#include "origami/sim/time.hpp"
#include "origami/wl/generators.hpp"

namespace origami::testing {

inline constexpr double kGoldenEpochOpenRate = 120'000.0;  // ops/s, Poisson
inline constexpr double kGoldenLiveOpenRate = 150'000.0;   // ops/s, paced

inline wl::Trace golden_trace(std::uint64_t seed) {
  wl::TraceRwConfig cfg;
  cfg.ops = 20'000;
  cfg.projects = 4;
  cfg.modules_per_project = 3;
  cfg.sources_per_module = 8;
  cfg.headers_shared = 40;
  cfg.seed = seed;
  return wl::make_trace_rw(cfg);
}

inline cluster::ReplayOptions golden_epoch_options(std::uint64_t seed,
                                                   bool faulted, bool open) {
  cluster::ReplayOptions opt;
  opt.mds_count = 5;
  opt.clients = 8;
  opt.epoch_length = sim::millis(100);
  opt.warmup_epochs = 1;
  opt.seed = seed + 100;
  if (open) opt.open_loop_rate = kGoldenEpochOpenRate;
  if (faulted) {
    opt.faults.seed = seed * 1000 + 7;
    opt.faults.crash_prob = 0.05;
    opt.faults.crash_recovery = sim::millis(40);
    opt.faults.straggler_prob = 0.1;
    opt.faults.rpc_loss_prob = 0.001;
    opt.retry.max_retries = 4;
    opt.retry.timeout = sim::millis(2);
    opt.recovery.commit_mode = recovery::CommitMode::kAsync;
    opt.recovery.commit_window = sim::millis(1);
    opt.recovery.commit_batch = 32;
    opt.recovery.fencing = true;
  }
  return opt;
}

inline fs::LiveReplayOptions golden_live_options(std::uint64_t seed,
                                                 bool faulted, bool open) {
  fs::LiveReplayOptions opt;
  opt.epoch_ops = 4'000;
  if (open) opt.issue_rate = kGoldenLiveOpenRate;
  if (faulted) {
    opt.faults.seed = seed * 1000 + 7;
    opt.faults.crash_prob = 0.15;
    opt.faults.crash_recovery = sim::millis(300);
    opt.faults.straggler_prob = 0.2;
    opt.faults.rpc_loss_prob = 0.003;
    opt.recovery.commit_mode = recovery::CommitMode::kAsync;
    opt.recovery.commit_window = sim::millis(1);
    opt.recovery.commit_batch = 32;
    opt.recovery.fencing = true;
  }
  return opt;
}

}  // namespace origami::testing
