#pragma once

// Byte-identity fingerprints shared by the golden tests and the
// regeneration tool (tools/arrival_goldens.cpp). A fingerprint serialises
// every observable counter of a run — virtual-clock metrics, the latency
// histogram shape, fault/recovery accounting, and the final ownership map —
// so two runs compare as whole strings. Doubles are rendered as hexfloats:
// equality means bit-identical arithmetic, not "close enough".

#include <ios>
#include <sstream>
#include <string>

#include "origami/cluster/metrics.hpp"
#include "origami/fs/live_replay.hpp"

namespace origami::testing {

inline std::string run_result_fingerprint(const cluster::RunResult& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << r.completed_ops << ' ' << r.makespan << ' ' << r.throughput_ops
      << ' ' << r.steady_throughput_ops << '\n';
  out << r.mean_latency_us << ' ' << r.p50_latency_us << ' '
      << r.p99_latency_us << ' ' << r.latency.count() << ' '
      << r.latency.mean() << ' ' << r.latency.max() << '\n';
  out << r.total_rpcs << ' ' << r.rpc_per_request << ' '
      << r.forwarded_requests << ' ' << r.migrations << ' '
      << r.inodes_migrated << '\n';
  out << r.imf_qps << ' ' << r.imf_rpc << ' ' << r.imf_inodes << ' '
      << r.imf_busy << '\n';
  const cluster::RobustnessStats& f = r.faults;
  out << f.retries << ' ' << f.timeouts << ' ' << f.rpcs_lost << ' '
      << f.rpcs_corrupted << ' ' << f.failed_ops << ' ' << f.crashes << ' '
      << f.failovers << ' ' << f.failover_dirs << ' ' << f.restored_dirs
      << ' ' << f.aborted_migrations << ' ' << f.time_down << ' '
      << f.time_degraded << '\n';
  out << f.journal_records << ' ' << f.journal_checkpoints << ' '
      << f.journal_replays << ' ' << f.journal_replayed_records << ' '
      << f.torn_tail_truncations << ' ' << f.fenced_rejections << ' '
      << f.prepared_migrations << ' ' << f.committed_migrations << ' '
      << f.recovery_windows << ' ' << f.recovery_window_time << '\n';
  out << f.group_commits << ' ' << f.group_commit_records << ' '
      << f.acked_lost_ops << ' ' << f.unacked_lost_ops << ' '
      << f.max_commit_lag << '\n';
  // Per-epoch MDS activity, folded into one line per epoch.
  out << r.epochs.size();
  for (const cluster::EpochMetrics& e : r.epochs) {
    std::uint64_t ops = 0, rpcs = 0;
    sim::SimTime busy = 0;
    for (const cluster::MdsEpochMetrics& m : e.mds) {
      ops += m.ops;
      rpcs += m.rpcs;
      busy += m.busy;
    }
    out << ' ' << ops << ':' << rpcs << ':' << busy << ':' << e.migrations;
  }
  out << '\n';
  // Final ownership map, FNV-1a folded.
  std::uint64_t h = 1469598103934665603ull;
  for (std::uint32_t owner : r.final_dir_owner) {
    h ^= owner;
    h *= 1099511628211ull;
  }
  out << r.final_dir_owner.size() << ':' << h << '\n';
  return out.str();
}

inline std::string live_stats_fingerprint(const fs::LiveReplayStats& s) {
  std::ostringstream out;
  out << std::hexfloat;
  out << s.executed << ' ' << s.failed << ' ' << s.epochs << ' '
      << s.migrations << ' ' << s.shard_imbalance << '\n';
  for (std::uint64_t ops : s.shard_ops) out << ops << ' ';
  out << '\n';
  out << s.makespan << ' ' << s.throughput_ops << ' ' << s.latency.count()
      << ' ' << s.latency.mean() << ' ' << s.latency.min() << ' '
      << s.latency.max();
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    out << ' ' << s.latency.quantile(q);
  }
  out << '\n';
  for (sim::SimTime b : s.shard_busy) out << b << ' ';
  out << '\n';
  for (std::uint64_t n : s.shard_served) out << n << ' ';
  out << '\n';
  const cluster::RobustnessStats& f = s.faults;
  out << f.retries << ' ' << f.timeouts << ' ' << f.rpcs_lost << ' '
      << f.rpcs_corrupted << ' ' << f.failed_ops << ' ' << f.crashes << ' '
      << f.failovers << ' ' << f.failover_dirs << ' ' << f.restored_dirs
      << ' ' << f.aborted_migrations << ' ' << f.time_down << ' '
      << f.journal_records << ' ' << f.journal_checkpoints << ' '
      << f.journal_replays << ' ' << f.journal_replayed_records << ' '
      << f.torn_tail_truncations << ' ' << f.fenced_rejections << ' '
      << f.prepared_migrations << ' ' << f.committed_migrations << ' '
      << f.recovery_windows << '\n';
  return out.str();
}

}  // namespace origami::testing
