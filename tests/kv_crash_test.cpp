// Crash-consistency tests for the real store's async group-commit pipeline:
// acked-vs-durable visibility, exact loss reporting, torn-tail recovery of
// the on-disk WAL at every byte offset, and a seeded chaos sweep holding the
// durable-prefix contract (I7) and the bounded-loss contract (I8) against
// kv::Db::simulate_crash / recover.

#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "origami/common/rng.hpp"
#include "origami/kv/db.hpp"
#include "origami/kv/wal.hpp"

namespace origami::kv {
namespace {

DbOptions async_options(std::string wal_path = {}, std::size_t batch = 64) {
  DbOptions opts;
  opts.commit_mode = CommitMode::kAsync;
  opts.commit_batch = batch;
  opts.wal_path = std::move(wal_path);
  return opts;
}

std::string tmp_wal(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

TEST(DbAsyncCommit, AckedWritesVisibleBeforeDurable) {
  Db db(async_options());
  ASSERT_TRUE(db.put("a", "1").is_ok());
  ASSERT_TRUE(db.put("b", "2").is_ok());
  // Reads are memtable-authoritative: a get racing the unflushed mutation
  // sees the acked value even though its WAL record is still buffered.
  ASSERT_TRUE(db.get("a").is_ok());
  EXPECT_EQ(db.get("a").value(), "1");
  EXPECT_EQ(db.pending_commit_records(), 2u);
  EXPECT_EQ(db.durability_of("a"), Db::Durability::kPending);
  EXPECT_EQ(db.durable_seqno(), 0u);

  ASSERT_TRUE(db.commit().is_ok());
  EXPECT_EQ(db.pending_commit_records(), 0u);
  EXPECT_EQ(db.durability_of("a"), Db::Durability::kDurable);
  EXPECT_EQ(db.durability_of("b"), Db::Durability::kDurable);
  EXPECT_EQ(db.durability_of("missing"), Db::Durability::kNotFound);
  EXPECT_EQ(db.durable_seqno(), db.last_seqno());
}

TEST(DbAsyncCommit, BatchTriggerGroupCommits) {
  Db db(async_options({}, /*batch=*/4));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.put("k" + std::to_string(i), "v").is_ok());
  }
  EXPECT_EQ(db.pending_commit_records(), 0u);
  const DbStats stats = db.stats();
  EXPECT_EQ(stats.group_commits, 2u);
  EXPECT_EQ(stats.group_commit_records, 8u);
  EXPECT_EQ(stats.wal_fsyncs, 2u);
  EXPECT_GT(stats.commit_buffer_bytes_max, 0u);
  // In-memory log: nothing real to fsync, so no measured latency samples.
  EXPECT_EQ(stats.fsync_micros.count(), 0u);
  EXPECT_EQ(db.durable_seqno(), 8u);
}

TEST(DbAsyncCommit, MeasuredFsyncLatencyOnFileBackedWal) {
  const std::string path = tmp_wal("kv_crash_fsync.wal");
  Db db(async_options(path, /*batch=*/2));
  ASSERT_TRUE(db.put("a", "1").is_ok());
  ASSERT_TRUE(db.put("b", "2").is_ok());  // batch full -> commit + fsync
  const DbStats stats = db.stats();
  EXPECT_EQ(stats.wal_fsyncs, 1u);
  ASSERT_EQ(stats.fsync_micros.count(), 1u);
  EXPECT_GE(stats.fsync_micros.min(), 1u);  // measured wall clock, >= 1us
  std::remove(path.c_str());
}

TEST(DbAsyncCommit, MemtableFlushGroupCommitsPendingFirst) {
  Db db(async_options());
  ASSERT_TRUE(db.put("a", "1").is_ok());
  ASSERT_TRUE(db.put("b", "2").is_ok());
  ASSERT_TRUE(db.flush().is_ok());
  // The sorted run is the pending records' durability point: flushing the
  // memtable without committing them first would drop them from both the
  // WAL (reset) and the buffer.
  EXPECT_EQ(db.pending_commit_records(), 0u);
  EXPECT_EQ(db.durable_seqno(), db.last_seqno());
  Db::LossReport loss = db.simulate_crash();
  EXPECT_TRUE(loss.acked_lost.empty());
  ASSERT_TRUE(db.recover().is_ok());
  EXPECT_EQ(db.get("a").value(), "1");
  EXPECT_EQ(db.get("b").value(), "2");
}

TEST(DbCrash, ReportsExactAckedLoss) {
  Db db(async_options({}, /*batch=*/64));
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(db.put("d" + std::to_string(i), "v").is_ok());
  }
  ASSERT_TRUE(db.commit().is_ok());
  for (int i = 6; i <= 8; ++i) {
    ASSERT_TRUE(db.put("p" + std::to_string(i), "v").is_ok());
  }
  ASSERT_TRUE(db.del("d5").is_ok());  // pending tombstone

  const Db::LossReport loss = db.simulate_crash();
  ASSERT_EQ(loss.acked_lost.size(), 4u);
  EXPECT_EQ(loss.acked_lost[0].key, "p6");
  EXPECT_EQ(loss.acked_lost[1].key, "p7");
  EXPECT_EQ(loss.acked_lost[2].key, "p8");
  EXPECT_EQ(loss.acked_lost[3].key, "d5");
  EXPECT_TRUE(loss.acked_lost[3].tombstone);
  EXPECT_EQ(loss.acked_lost[0].seqno, 6u);
  EXPECT_EQ(loss.durable_seqno, 5u);
  EXPECT_EQ(loss.wal_durable_seqno, 5u);
  EXPECT_FALSE(loss.wal_tail_torn);

  WalReplayStats replay;
  ASSERT_TRUE(db.recover(&replay).is_ok());
  // I7 on real bytes: the recovered store reproduces the durable watermark
  // exactly — nothing durable lost, nothing acked-but-lost resurrected.
  EXPECT_EQ(replay.max_seqno, loss.wal_durable_seqno);
  EXPECT_EQ(replay.records, 5u);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(db.get("d" + std::to_string(i)).is_ok());
  }
  for (int i = 6; i <= 8; ++i) {
    EXPECT_FALSE(db.get("p" + std::to_string(i)).is_ok());
  }
  // The store keeps working after recovery; seqnos continue past the hole.
  ASSERT_TRUE(db.put("after", "crash").is_ok());
  ASSERT_TRUE(db.commit().is_ok());
  EXPECT_EQ(db.durability_of("after"), Db::Durability::kDurable);
}

TEST(DbCrash, TornWalTailTruncatedOnRecovery) {
  const std::string path = tmp_wal("kv_crash_torn.wal");
  Db db(async_options(path, /*batch=*/64));
  ASSERT_TRUE(db.put("durable", "yes").is_ok());
  ASSERT_TRUE(db.commit().is_ok());
  ASSERT_TRUE(db.put("buffered", "lost").is_ok());

  const Db::LossReport loss = db.simulate_crash(/*tear_wal_tail=*/true);
  EXPECT_TRUE(loss.wal_tail_torn);
  ASSERT_EQ(loss.acked_lost.size(), 1u);
  EXPECT_EQ(loss.acked_lost[0].key, "buffered");

  WalReplayStats replay;
  ASSERT_TRUE(db.recover(&replay).is_ok());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.max_seqno, loss.wal_durable_seqno);
  EXPECT_EQ(db.get("durable").value(), "yes");
  EXPECT_FALSE(db.get("buffered").is_ok());
  // The truncation left a writable log: commit + re-recover round-trips.
  ASSERT_TRUE(db.put("post", "crash").is_ok());
  ASSERT_TRUE(db.commit().is_ok());
  std::remove(path.c_str());
}

// Satellite: the WAL-level torn-tail property test, lifted to the store.
// A fresh Db opened over an on-disk log truncated at EVERY byte offset of
// the final record must recover exactly the durable prefix — no crash, no
// phantom entry — and accept new writes afterwards.
TEST(DbCrash, FileBackedTornTailEveryTruncationOffset) {
  const std::string full_path = tmp_wal("kv_crash_prop_full.wal");
  const std::string cut_path = tmp_wal("kv_crash_prop_cut.wal");

  std::size_t prefix_end = 0;
  {
    Db db(async_options(full_path, /*batch=*/64));
    ASSERT_TRUE(db.put("k1", "v1").is_ok());
    ASSERT_TRUE(db.put("k2", std::string(64, 'x')).is_ok());
    ASSERT_TRUE(db.put("gone", "tmp").is_ok());
    ASSERT_TRUE(db.del("gone").is_ok());
    ASSERT_TRUE(db.commit().is_ok());
    {
      std::ifstream in(full_path, std::ios::binary | std::ios::ate);
      ASSERT_TRUE(static_cast<bool>(in));
      prefix_end = static_cast<std::size_t>(in.tellg());
    }
    ASSERT_TRUE(db.put("final-key", "final-value").is_ok());
    ASSERT_TRUE(db.commit().is_ok());
  }
  std::string bytes;
  {
    std::ifstream in(full_path, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(in));
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>{});
  }
  ASSERT_GT(bytes.size(), prefix_end);

  for (std::size_t cut = prefix_end; cut <= bytes.size(); ++cut) {
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    Db db(async_options(cut_path, /*batch=*/64));
    WalReplayStats replay;
    ASSERT_TRUE(db.recover(&replay).is_ok()) << "cut at byte " << cut;
    const bool whole = cut == bytes.size();
    EXPECT_EQ(replay.max_seqno, whole ? 5u : 4u) << "cut at byte " << cut;
    EXPECT_EQ(replay.torn_tail, cut != prefix_end && !whole)
        << "cut at byte " << cut;
    EXPECT_EQ(db.get("k1").value(), "v1") << "cut at byte " << cut;
    EXPECT_FALSE(db.get("gone").is_ok()) << "cut at byte " << cut;
    EXPECT_EQ(db.get("final-key").is_ok(), whole) << "cut at byte " << cut;
    // Recovery restored the durable watermark: fresh writes group-commit
    // cleanly behind the surviving prefix.
    ASSERT_TRUE(db.put("post", "crash").is_ok()) << "cut at byte " << cut;
    ASSERT_TRUE(db.commit().is_ok()) << "cut at byte " << cut;
    EXPECT_EQ(db.durability_of("post"), Db::Durability::kDurable)
        << "cut at byte " << cut;
  }
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

// Satellite: seeded chaos sweep. Random put/del/commit traffic interleaved
// with crashes (half of them tearing the WAL tail); after every crash the
// recovered store must match an independently tracked durable model (I7),
// and the reported acked loss must be exactly the pending set, bounded by
// the commit batch (I8).
TEST(DbCrash, SeededChaosSweepHoldsDurablePrefixContract) {
  constexpr std::size_t kBatch = 8;
  for (const std::uint64_t seed : {7u, 21u, 99u}) {
    common::Xoshiro256 rng(seed);
    const std::string path =
        tmp_wal("kv_crash_chaos_" + std::to_string(seed) + ".wal");
    Db db(async_options(path, kBatch));

    // Independent shadow models: `acked` mirrors every acknowledged write,
    // `durable` only those whose group commit ran.
    std::map<std::string, std::optional<std::string>> acked;
    std::map<std::string, std::optional<std::string>> durable;
    std::vector<std::string> pending_keys;  // since the last commit, in order
    std::uint64_t crashes = 0;

    for (int step = 0; step < 2000; ++step) {
      const std::uint64_t dice = rng.uniform(100);
      const std::string key = "key" + std::to_string(rng.uniform(40));
      if (dice < 55) {
        const std::string value = "v" + std::to_string(step);
        ASSERT_TRUE(db.put(key, value).is_ok());
        acked[key] = value;
        pending_keys.push_back(key);
      } else if (dice < 70) {
        ASSERT_TRUE(db.del(key).is_ok());
        acked[key] = std::nullopt;
        pending_keys.push_back(key);
      } else if (dice < 85) {
        ASSERT_TRUE(db.commit().is_ok());
        durable = acked;
        pending_keys.clear();
      } else if (dice < 95) {
        // Acked view always serves the latest acked value (memtable
        // authoritative), pending or not.
        const auto it = acked.find(key);
        const auto got = db.get(key);
        if (it != acked.end() && it->second.has_value()) {
          ASSERT_TRUE(got.is_ok()) << "seed " << seed << " step " << step;
          EXPECT_EQ(got.value(), *it->second);
        } else {
          EXPECT_FALSE(got.is_ok()) << "seed " << seed << " step " << step;
        }
      } else {
        // Crash. The Db's own batch trigger flushed whenever kBatch records
        // piled up, so the tracked pending set can never exceed the batch.
        const bool tear = rng.uniform(2) == 1;
        const Db::LossReport loss = db.simulate_crash(tear);
        ++crashes;
        ASSERT_LE(loss.acked_lost.size(), kBatch)
            << "seed " << seed << " step " << step;
        EXPECT_EQ(loss.wal_tail_torn, tear);
        // The loss report is exact: every swept record is named, in order.
        ASSERT_EQ(loss.acked_lost.size(), pending_keys.size())
            << "seed " << seed << " step " << step;
        for (std::size_t i = 0; i < pending_keys.size(); ++i) {
          EXPECT_EQ(loss.acked_lost[i].key, pending_keys[i]);
        }
        WalReplayStats replay;
        ASSERT_TRUE(db.recover(&replay).is_ok());
        // I7 on real bytes: replay reproduces the durable watermark.
        EXPECT_EQ(replay.max_seqno, loss.wal_durable_seqno)
            << "seed " << seed << " step " << step;
        // The acked-but-lost records are gone; the durable model is what
        // survives.
        acked = durable;
        pending_keys.clear();
        for (const auto& [k, v] : durable) {
          const auto got = db.get(k);
          if (v.has_value()) {
            ASSERT_TRUE(got.is_ok())
                << "seed " << seed << " step " << step << " key " << k;
            EXPECT_EQ(got.value(), *v);
          } else {
            EXPECT_FALSE(got.is_ok())
                << "seed " << seed << " step " << step << " key " << k;
          }
        }
      }
      // The batch trigger keeps the pending window bounded; mirror the
      // commits it performed so the shadow models stay in sync.
      if (db.pending_commit_records() == 0 && !pending_keys.empty()) {
        durable = acked;
        pending_keys.clear();
      }
    }
    EXPECT_GT(crashes, 0u) << "seed " << seed;
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace origami::kv
