// Tests for the MDS substrate: partition map + partitioners, the queueing
// server, the inode store, the near-root client cache and the data cluster.
#include <gtest/gtest.h>

#include <set>

#include "origami/mds/client_cache.hpp"
#include "origami/mds/data_cluster.hpp"
#include "origami/mds/inode_store.hpp"
#include "origami/mds/mds_server.hpp"
#include "origami/mds/partition.hpp"

namespace origami::mds {
namespace {

using fsns::DirTree;
using fsns::NodeId;

DirTree small_tree(NodeId* a_out = nullptr, NodeId* b_out = nullptr,
                   NodeId* a1_out = nullptr) {
  DirTree tree;
  const NodeId a = tree.add_dir(fsns::kRootNode, "a");
  const NodeId b = tree.add_dir(fsns::kRootNode, "b");
  const NodeId a1 = tree.add_dir(a, "a1");
  tree.add_file(a, "fa");
  tree.add_file(a1, "fa1");
  tree.add_file(b, "fb");
  tree.finalize();
  if (a_out) *a_out = a;
  if (b_out) *b_out = b;
  if (a1_out) *a1_out = a1;
  return tree;
}

// ----------------------------------------------------------- PartitionMap --

TEST(PartitionMap, InitialStateAllOnMdsZero) {
  const DirTree tree = small_tree();
  PartitionMap map(tree, 3);
  for (NodeId d : tree.directories()) EXPECT_EQ(map.dir_owner(d), 0u);
  EXPECT_EQ(map.inode_counts()[0], tree.size());
  EXPECT_EQ(map.inode_counts()[1], 0u);
}

TEST(PartitionMap, FilesFollowParentOwner) {
  NodeId a, b, a1;
  const DirTree tree = small_tree(&a, &b, &a1);
  PartitionMap map(tree, 3);
  map.set_dir_owner(a, 2);
  const NodeId fa = tree.node(a).children[1];  // "fa" file
  ASSERT_FALSE(tree.is_dir(fa));
  EXPECT_EQ(map.node_owner(fa), 2u);
  EXPECT_EQ(map.node_owner(a), 2u);
  EXPECT_EQ(map.node_owner(a1), 0u);  // dir not moved by set_dir_owner
}

TEST(PartitionMap, MigrateMovesUniformSubtree) {
  NodeId a, b, a1;
  const DirTree tree = small_tree(&a, &b, &a1);
  PartitionMap map(tree, 3);
  const std::uint64_t moved = map.migrate(a, 0, 1);
  // dirs a (+1 file) and a1 (+1 file) => 4 inodes.
  EXPECT_EQ(moved, 4u);
  EXPECT_EQ(map.dir_owner(a), 1u);
  EXPECT_EQ(map.dir_owner(a1), 1u);
  EXPECT_EQ(map.dir_owner(b), 0u);
  EXPECT_TRUE(map.subtree_uniform(a));
  EXPECT_EQ(map.prev_owner(a), 0u);
  EXPECT_EQ(map.dir_version(a), 1u);
}

TEST(PartitionMap, MigrateOnlyMovesSourceOwnedDirs) {
  NodeId a, b, a1;
  const DirTree tree = small_tree(&a, &b, &a1);
  PartitionMap map(tree, 3);
  map.set_dir_owner(a1, 2);  // nested dir already elsewhere
  const std::uint64_t moved = map.migrate(a, 0, 1);
  EXPECT_EQ(moved, 2u);  // only dir a + its file
  EXPECT_EQ(map.dir_owner(a1), 2u);
  EXPECT_FALSE(map.subtree_uniform(a));
}

TEST(PartitionMap, InodeCountsConserved) {
  NodeId a, b, a1;
  const DirTree tree = small_tree(&a, &b, &a1);
  PartitionMap map(tree, 4);
  map.migrate(a, 0, 2);
  map.migrate(b, 0, 3);
  std::uint64_t total = 0;
  for (auto c : map.inode_counts()) total += c;
  EXPECT_EQ(total, tree.size());
}

TEST(PartitionMap, MigrateNoopWhenSourceWrong) {
  NodeId a, b, a1;
  const DirTree tree = small_tree(&a, &b, &a1);
  PartitionMap map(tree, 3);
  EXPECT_EQ(map.migrate(a, 2, 1), 0u);  // nothing owned by 2
  EXPECT_EQ(map.dir_owner(a), 0u);
}

// ----------------------------------------------------------- partitioners --

fsns::DirTree deeper_tree() {
  DirTree tree;
  for (int i = 0; i < 8; ++i) {
    const NodeId top = tree.add_dir(fsns::kRootNode, "top" + std::to_string(i));
    for (int j = 0; j < 6; ++j) {
      const NodeId mid = tree.add_dir(top, "mid" + std::to_string(j));
      for (int k = 0; k < 4; ++k) {
        const NodeId leaf = tree.add_dir(mid, "leaf" + std::to_string(k));
        tree.add_file(leaf, "f");
      }
    }
  }
  tree.finalize();
  return tree;
}

TEST(Partitioner, CoarseHashKeepsSubtreesTogether) {
  const DirTree tree = deeper_tree();
  PartitionMap map(tree, 5);
  partitioner::coarse_hash(map, 1);
  // Every directory below depth 1 shares its depth-1 ancestor's owner.
  for (NodeId d : tree.directories()) {
    if (tree.depth(d) <= 1) continue;
    NodeId anchor = d;
    while (tree.depth(anchor) > 1) anchor = tree.parent(anchor);
    EXPECT_EQ(map.dir_owner(d), map.dir_owner(anchor));
  }
}

TEST(Partitioner, CoarseHashUsesMultipleMds) {
  const DirTree tree = deeper_tree();
  PartitionMap map(tree, 5);
  partitioner::coarse_hash(map, 1);
  std::set<cost::MdsId> owners;
  for (NodeId d : tree.directories()) owners.insert(map.dir_owner(d));
  EXPECT_GT(owners.size(), 1u);
}

TEST(Partitioner, FineHashSpreadsSiblingSubdirs) {
  const DirTree tree = deeper_tree();
  PartitionMap map(tree, 5);
  partitioner::fine_hash(map);
  // With independent hashing, inode spread must be much more even than
  // coarse: check all MDSs own something and no MDS owns > 50%.
  std::uint64_t max_count = 0;
  for (auto c : map.inode_counts()) {
    EXPECT_GT(c, 0u);
    max_count = std::max(max_count, c);
  }
  EXPECT_LT(max_count, tree.size() / 2);
}

TEST(Partitioner, SingleResetsEverythingToZero) {
  const DirTree tree = deeper_tree();
  PartitionMap map(tree, 5);
  partitioner::fine_hash(map);
  partitioner::single(map);
  for (NodeId d : tree.directories()) EXPECT_EQ(map.dir_owner(d), 0u);
  EXPECT_EQ(map.inode_counts()[0], tree.size());
}

// -------------------------------------------------------------- MdsServer --

TEST(MdsServer, SingleSlotQueuesFcfs) {
  MdsServerParams p;
  p.service_slots = 1;
  MdsServer s(0, p);
  EXPECT_EQ(s.serve(0, 100), 100);
  EXPECT_EQ(s.serve(10, 100), 200);   // waits for slot
  EXPECT_EQ(s.serve(500, 100), 600);  // idle gap
  EXPECT_EQ(s.counters().busy, 300);
  EXPECT_EQ(s.counters().queue_wait, 90);
}

TEST(MdsServer, MultiSlotServesInParallel) {
  MdsServerParams p;
  p.service_slots = 2;
  MdsServer s(0, p);
  EXPECT_EQ(s.serve(0, 100), 100);
  EXPECT_EQ(s.serve(0, 100), 100);  // second slot
  EXPECT_EQ(s.serve(0, 100), 200);  // queued
  EXPECT_EQ(s.counters().queue_wait, 100);
}

TEST(MdsServer, BacklogAndEarliestStart) {
  MdsServerParams p;
  p.service_slots = 1;
  MdsServer s(3, p);
  EXPECT_EQ(s.id(), 3u);
  s.serve(0, 1000);
  EXPECT_EQ(s.earliest_start(0), 1000);
  EXPECT_EQ(s.earliest_start(2000), 2000);
  EXPECT_EQ(s.backlog(400), 600);
}

TEST(MdsServer, DrainCountersResets) {
  MdsServer s(0, {});
  s.serve(0, 50);
  s.counters().ops_executed = 7;
  const auto drained = s.drain_counters();
  EXPECT_EQ(drained.ops_executed, 7u);
  EXPECT_EQ(drained.busy, 50);
  EXPECT_EQ(s.counters().ops_executed, 0u);
  EXPECT_EQ(s.counters().busy, 0);
}

// ------------------------------------------------------------- InodeStore --

TEST(InodeStore, KeyEncodingGroupsSiblings) {
  const std::string k1 = inode_key(5, "aaa");
  const std::string k2 = inode_key(5, "zzz");
  const std::string k3 = inode_key(6, "aaa");
  EXPECT_LT(k1, k2);
  EXPECT_LT(k2, k3);  // big-endian parent dominates ordering
}

TEST(InodeStore, EncodeDecodeRoundtrip) {
  fsns::InodeAttr attr;
  attr.mode = 0755;
  attr.size = 123456;
  attr.nlink = 3;
  const std::string data = encode_inode(attr, true);
  fsns::InodeAttr back;
  bool is_dir = false;
  ASSERT_TRUE(decode_inode(data, back, is_dir));
  EXPECT_TRUE(is_dir);
  EXPECT_EQ(back.mode, 0755u);
  EXPECT_EQ(back.size, 123456u);
  EXPECT_EQ(back.nlink, 3u);
  EXPECT_FALSE(decode_inode("garbage", back, is_dir));
}

TEST(InodeStore, PutLookupEraseListDir) {
  NodeId a, b, a1;
  const DirTree tree = small_tree(&a, &b, &a1);
  InodeStore store;
  for (NodeId id = 0; id < tree.size(); ++id) {
    ASSERT_TRUE(store.put(tree, id).is_ok());
  }
  fsns::InodeAttr attr;
  EXPECT_TRUE(store.lookup(tree, a, &attr));
  EXPECT_TRUE(store.lookup(tree, fsns::kRootNode));

  std::set<std::string> names;
  store.list_dir(a, [&](std::string_view name) {
    names.insert(std::string(name));
    return true;
  });
  EXPECT_EQ(names, (std::set<std::string>{"a1", "fa"}));

  ASSERT_TRUE(store.erase(tree, a1).is_ok());
  EXPECT_FALSE(store.lookup(tree, a1));
}

// ---------------------------------------------------------- NearRootCache --

TEST(NearRootCache, DisabledAlwaysSaysDisabled) {
  NearRootCache cache(100, 3, /*enabled=*/false);
  EXPECT_EQ(cache.access(1, 0, 0), NearRootCache::Outcome::kDisabled);
  EXPECT_FALSE(cache.enabled());
}

TEST(NearRootCache, MissThenHit) {
  NearRootCache cache(100, 3, true);
  EXPECT_EQ(cache.access(5, 1, 0), NearRootCache::Outcome::kMiss);
  EXPECT_EQ(cache.access(5, 1, 0), NearRootCache::Outcome::kHit);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(NearRootCache, DepthThresholdExcludesDeepEntries) {
  NearRootCache cache(100, 3, true);
  EXPECT_EQ(cache.access(5, 3, 0), NearRootCache::Outcome::kBeyondDepth);
  EXPECT_EQ(cache.access(5, 7, 0), NearRootCache::Outcome::kBeyondDepth);
  EXPECT_EQ(cache.access(5, 2, 0), NearRootCache::Outcome::kMiss);
}

TEST(NearRootCache, MigrationMakesEntryStaleOnce) {
  NearRootCache cache(100, 3, true);
  EXPECT_EQ(cache.access(5, 1, 0), NearRootCache::Outcome::kMiss);
  // Version bump (a migration happened) -> one stale access, then hits.
  EXPECT_EQ(cache.access(5, 1, 1), NearRootCache::Outcome::kStale);
  EXPECT_EQ(cache.access(5, 1, 1), NearRootCache::Outcome::kHit);
  EXPECT_EQ(cache.stats().stale, 1u);
}

// ------------------------------------------------------------ DataCluster --

TEST(DataCluster, TransferTimeScalesWithBytes) {
  DataClusterParams p;
  p.servers = 1;
  p.slots_per_server = 1;
  p.base_latency = sim::micros(100);
  p.bytes_per_second = 1e9;
  DataCluster d(p);
  const auto t_small = d.serve(1, 0, 1'000);
  DataCluster d2(p);
  const auto t_big = d2.serve(1, 0, 100'000'000);
  EXPECT_GT(t_big, t_small * 100);
}

TEST(DataCluster, QueuesWhenSaturated) {
  DataClusterParams p;
  p.servers = 1;
  p.slots_per_server = 1;
  p.base_latency = sim::micros(100);
  p.bytes_per_second = 1e9;
  DataCluster d(p);
  const auto first = d.serve(1, 0, 0);
  const auto second = d.serve(1, 0, 0);
  EXPECT_EQ(first, sim::micros(100));
  EXPECT_EQ(second, sim::micros(200));
  EXPECT_EQ(d.requests(), 2u);
}

TEST(DataCluster, HashSpreadsAcrossServers) {
  DataClusterParams p;
  p.servers = 4;
  p.slots_per_server = 1;
  p.base_latency = sim::micros(100);
  DataCluster d(p);
  // Many distinct files at t=0: with 4 servers, average completion must be
  // well below the single-server serial schedule.
  sim::SimTime max_done = 0;
  for (fsns::NodeId f = 0; f < 64; ++f) {
    max_done = std::max(max_done, d.serve(f, 0, 0));
  }
  EXPECT_LT(max_done, sim::micros(100) * 40);
}

}  // namespace
}  // namespace origami::mds
