// Tests for the policy registry (policy/registry.hpp): spec parsing,
// strict validation, the catalogue, construct-from-spec round trips, the
// golden byte-identity contract (registry-constructed legacy balancers
// replay bit-identically to historical direct constructions), observer
// hook ordering, and the shared TriggerSmoother.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "origami/cluster/replay.hpp"
#include "origami/common/thread_pool.hpp"
#include "origami/core/balancers.hpp"
#include "origami/core/meta_opt.hpp"
#include "origami/core/pipeline.hpp"
#include "origami/engine/observer.hpp"
#include "origami/fs/live_replay.hpp"
#include "origami/policy/registry.hpp"
#include "origami/wl/generators.hpp"

namespace origami {
namespace {

using cluster::ReplayOptions;
using cluster::RunResult;
using policy::Registry;

wl::Trace small_rw(std::uint64_t seed, std::uint64_t ops = 6'000) {
  wl::TraceRwConfig cfg;
  cfg.seed = seed;
  cfg.ops = ops;
  return wl::make_trace_rw(cfg);
}

ReplayOptions small_options(std::uint64_t seed = 11) {
  ReplayOptions opt;
  opt.mds_count = 5;
  opt.clients = 8;
  opt.epoch_length = sim::millis(100);
  opt.warmup_epochs = 1;
  opt.seed = seed;
  return opt;
}

ReplayOptions with_faults(ReplayOptions opt) {
  opt.faults.seed = 2027;
  opt.faults.crash_prob = 0.05;
  opt.faults.crash_recovery = sim::millis(40);
  opt.faults.rpc_loss_prob = 0.001;
  opt.retry.max_retries = 4;
  opt.retry.timeout = sim::millis(2);
  return opt;
}

// ------------------------------------------------------------- parsing --

TEST(PolicySpec, ParsesBareName) {
  auto r = policy::parse_policy_spec("origami");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().name, "origami");
  EXPECT_TRUE(r.value().params.empty());
}

TEST(PolicySpec, ParsesParams) {
  auto r = policy::parse_policy_spec("origami:budget=4,min-ops=2,trigger=0.2");
  ASSERT_TRUE(r.is_ok());
  const auto& spec = r.value();
  EXPECT_EQ(spec.name, "origami");
  ASSERT_EQ(spec.params.size(), 3u);
  EXPECT_EQ(spec.params[0].first, "budget");
  EXPECT_EQ(spec.params[0].second, "4");
  EXPECT_EQ(spec.params[2].first, "trigger");
  EXPECT_EQ(spec.params[2].second, "0.2");
}

TEST(PolicySpec, RejectsMalformedSpecs) {
  EXPECT_FALSE(policy::parse_policy_spec("").is_ok());
  EXPECT_FALSE(policy::parse_policy_spec(":k=v").is_ok());
  EXPECT_FALSE(policy::parse_policy_spec("x:novalue").is_ok());
  EXPECT_FALSE(policy::parse_policy_spec("x:=3").is_ok());
  EXPECT_FALSE(policy::parse_policy_spec("x:a=1,b").is_ok());
}

TEST(PolicySpec, ParamMapTypedAccess) {
  auto r = policy::parse_policy_spec("p:a=2.5,b=7");
  ASSERT_TRUE(r.is_ok());
  const policy::ParamMap p(r.value().params);
  EXPECT_TRUE(p.has("a"));
  EXPECT_FALSE(p.has("c"));
  EXPECT_DOUBLE_EQ(p.get_double("a", 0.0), 2.5);
  EXPECT_EQ(p.get_int("b", 0), 7);
  EXPECT_EQ(p.get_int("c", 42), 42);
}

// ---------------------------------------------------- strict validation --

TEST(PolicyRegistry, UnknownPolicyListsRegisteredNames) {
  const auto s = Registry::builtin().validate("bogus");
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.to_string().find("unknown policy 'bogus'"), std::string::npos);
  EXPECT_NE(s.to_string().find("origami"), std::string::npos);
  EXPECT_NE(s.to_string().find("greedy-spill"), std::string::npos);
}

TEST(PolicyRegistry, UnknownParamListsValidKeys) {
  const auto s = Registry::builtin().validate("origami:bogus=1");
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.to_string().find("no parameter 'bogus'"), std::string::npos);
  EXPECT_NE(s.to_string().find("min-benefit"), std::string::npos);
}

TEST(PolicyRegistry, EveryEntryValidatesBareAndWithDeclaredParams) {
  const Registry& r = Registry::builtin();
  EXPECT_GE(r.entries().size(), 10u);
  for (const policy::Entry& e : r.entries()) {
    EXPECT_TRUE(r.validate(e.name).is_ok()) << e.name;
    for (const policy::ParamSpec& p : e.params) {
      EXPECT_TRUE(r.validate(e.name + ":" + p.key + "=" + p.default_value)
                      .is_ok())
          << e.name << ":" << p.key;
    }
  }
}

TEST(PolicyRegistry, DescribeListsEveryPolicyAndSchema) {
  const std::string text = Registry::builtin().describe();
  for (const policy::Entry& e : Registry::builtin().entries()) {
    EXPECT_NE(text.find(e.name), std::string::npos) << e.name;
    for (const policy::ParamSpec& p : e.params) {
      EXPECT_NE(text.find(p.key + "=" + p.default_value), std::string::npos)
          << e.name << ":" << p.key;
    }
  }
  EXPECT_NE(text.find("when:"), std::string::npos);
  EXPECT_NE(text.find("where:"), std::string::npos);
  EXPECT_NE(text.find("howmuch:"), std::string::npos);
  EXPECT_NE(text.find("modes: epoch + live"), std::string::npos);
}

TEST(PolicyRegistry, FixedNeedsConvergedContext) {
  policy::PolicyContext ctx;
  const auto made = Registry::builtin().make("fixed", ctx);
  ASSERT_FALSE(made.is_ok());
  EXPECT_NE(made.status().to_string().find("converged"), std::string::npos);
}

TEST(PolicyRegistry, StaticPoliciesHaveNoLiveForm) {
  policy::PolicyContext ctx;
  const auto made = Registry::builtin().make_live("c-hash", ctx);
  ASSERT_FALSE(made.is_ok());
  EXPECT_NE(made.status().to_string().find("no live-mode form"),
            std::string::npos);
}

// ------------------------------------------------------ trigger smoother --

TEST(TriggerSmoother, PassthroughWithoutSmoothing) {
  core::TriggerSmoother s;
  EXPECT_FALSE(s.over(0.4, 0.5, /*ewma_alpha=*/1.0, /*patience=*/1));
  EXPECT_TRUE(s.over(0.6, 0.5, 1.0, 1));
  EXPECT_DOUBLE_EQ(s.smoothed(), 0.6);
}

TEST(TriggerSmoother, EwmaBlendsHistory) {
  core::TriggerSmoother s;
  s.over(1.0, 10.0, 0.5, 1);  // seeds smoothed_ with the first raw sample
  EXPECT_DOUBLE_EQ(s.smoothed(), 1.0);
  s.over(0.0, 10.0, 0.5, 1);
  EXPECT_DOUBLE_EQ(s.smoothed(), 0.5);
}

TEST(TriggerSmoother, PatienceCountsConsecutiveEpochs) {
  core::TriggerSmoother s;
  EXPECT_FALSE(s.over(0.9, 0.5, 1.0, 3));
  EXPECT_FALSE(s.over(0.9, 0.5, 1.0, 3));
  EXPECT_TRUE(s.over(0.9, 0.5, 1.0, 3));
  // A below-threshold epoch resets the streak.
  EXPECT_FALSE(s.over(0.1, 0.5, 1.0, 3));
  EXPECT_FALSE(s.over(0.9, 0.5, 1.0, 3));
}

TEST(TriggerSmoother, ResetForgetsEverything) {
  core::TriggerSmoother s;
  s.over(0.9, 0.5, 0.5, 1);
  s.reset();
  s.over(0.3, 10.0, 0.5, 1);
  EXPECT_DOUBLE_EQ(s.smoothed(), 0.3);  // re-seeded, not blended
}

TEST(TriggerSmoother, RebalanceTriggerKeepsLegacySingleEpochBehavior) {
  // threshold-only construction == the historical alpha=1/patience=1 form.
  core::RebalanceTrigger t{0.05};
  EXPECT_DOUBLE_EQ(t.threshold, 0.05);
  EXPECT_DOUBLE_EQ(t.ewma_alpha, 1.0);
  EXPECT_EQ(t.patience, 1);
}

// ------------------------------------------------- construct round trips --

void expect_identical(const RunResult& a, const RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.completed_ops, b.completed_ops) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.throughput_ops, b.throughput_ops) << label;
  EXPECT_EQ(a.steady_throughput_ops, b.steady_throughput_ops) << label;
  EXPECT_EQ(a.mean_latency_us, b.mean_latency_us) << label;
  EXPECT_EQ(a.p99_latency_us, b.p99_latency_us) << label;
  EXPECT_EQ(a.total_rpcs, b.total_rpcs) << label;
  EXPECT_EQ(a.migrations, b.migrations) << label;
  EXPECT_EQ(a.inodes_migrated, b.inodes_migrated) << label;
  EXPECT_EQ(a.imf_busy, b.imf_busy) << label;
  EXPECT_EQ(a.faults.retries, b.faults.retries) << label;
  EXPECT_EQ(a.faults.crashes, b.faults.crashes) << label;
  EXPECT_EQ(a.faults.failovers, b.faults.failovers) << label;
  EXPECT_EQ(a.faults.prepared_migrations, b.faults.prepared_migrations)
      << label;
  EXPECT_EQ(a.faults.committed_migrations, b.faults.committed_migrations)
      << label;
  EXPECT_EQ(a.faults.aborted_migrations, b.faults.aborted_migrations) << label;
  EXPECT_EQ(a.faults.fenced_rejections, b.faults.fenced_rejections) << label;
  EXPECT_EQ(a.final_dir_owner, b.final_dir_owner) << label;
  EXPECT_EQ(a.hash_file_inodes, b.hash_file_inodes) << label;
}

TEST(PolicyRegistry, EveryPolicyRunsDeterministically) {
  const wl::Trace trace = small_rw(/*seed=*/5);
  const ReplayOptions opt = small_options();

  // f-hash's converged map feeds "fixed".
  cluster::StaticBalancer fhash(cluster::StaticBalancer::Kind::kFineHash);
  const RunResult converged = cluster::replay_trace(trace, opt, fhash);

  for (const policy::Entry& e : Registry::builtin().entries()) {
    policy::PolicyContext ctx;
    ctx.options = &opt;
    ctx.converged = &converged;
    RunResult runs[2];
    for (int i = 0; i < 2; ++i) {
      auto made = Registry::builtin().make(e.name, ctx);
      ASSERT_TRUE(made.is_ok()) << e.name;
      auto balancer = std::move(made).value();
      runs[i] = cluster::replay_trace(trace, opt, *balancer);
    }
    EXPECT_GT(runs[0].completed_ops, 0u) << e.name;
    expect_identical(runs[0], runs[1], e.name);
  }
}

TEST(PolicyRegistry, LivePoliciesRunDeterministically) {
  const wl::Trace trace = small_rw(/*seed=*/9, /*ops=*/20'000);
  for (const policy::Entry& e : Registry::builtin().entries()) {
    if (!e.make_live) continue;
    fs::LiveReplayStats runs[2];
    for (int i = 0; i < 2; ++i) {
      policy::PolicyContext ctx;
      auto made = Registry::builtin().make_live(e.name, ctx);
      ASSERT_TRUE(made.is_ok()) << e.name;
      auto live = std::move(made).value();
      fs::OrigamiFs::Options fopt;
      fopt.shards = 5;
      fs::OrigamiFs fsys(fopt);
      fs::LiveReplayOptions lro;
      lro.epoch_ops = 4'000;
      lro.on_epoch = [&live](fs::OrigamiFs& f, fs::LiveFaultContext& c) {
        return live->on_epoch(f, c);
      };
      runs[i] = fs::replay_on_live(trace, fsys, lro);
    }
    EXPECT_GT(runs[0].executed, 0u) << e.name;
    EXPECT_EQ(runs[0].executed, runs[1].executed) << e.name;
    EXPECT_EQ(runs[0].failed, runs[1].failed) << e.name;
    EXPECT_EQ(runs[0].migrations, runs[1].migrations) << e.name;
    EXPECT_EQ(runs[0].shard_ops, runs[1].shard_ops) << e.name;
  }
}

// ----------------------------------------------------- golden byte check --

class PolicyGolden : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A tiny model pair so ml-tree/origami actually decide something; both
    // construction paths receive the same shared pointers.
    const wl::Trace training = small_rw(/*seed=*/99, /*ops=*/8'000);
    core::LabelGenOptions lg;
    lg.replay = small_options();
    lg.meta_opt.min_subtree_ops = 8;
    lg.meta_opt.stop_threshold = sim::micros(500);
    lg.min_feature_ops = 4;
    ml::GbdtParams gbdt;
    gbdt.rounds = 24;
    models_ = new core::TrainedModels(
        core::train_from_trace(training, lg, gbdt));
  }
  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
  }

  static core::TrainedModels* models_;
};

core::TrainedModels* PolicyGolden::models_ = nullptr;

/// The historical direct constructions the registry entries must reproduce
/// byte-for-byte (origami_sim's pre-registry code path).
std::unique_ptr<cluster::Balancer> direct_construct(
    const std::string& name, const ReplayOptions& opt,
    const core::TrainedModels& models, const RunResult* converged) {
  const core::RebalanceTrigger trigger{0.05};
  if (name == "single") {
    return std::make_unique<cluster::StaticBalancer>(
        cluster::StaticBalancer::Kind::kSingle);
  }
  if (name == "c-hash") {
    return std::make_unique<cluster::StaticBalancer>(
        cluster::StaticBalancer::Kind::kCoarseHash);
  }
  if (name == "f-hash") {
    return std::make_unique<cluster::StaticBalancer>(
        cluster::StaticBalancer::Kind::kFineHash);
  }
  if (name == "fixed") {
    return std::make_unique<cluster::FixedPartitionBalancer>(*converged);
  }
  if (name == "ml-tree") {
    core::MlTreeBalancer::Params p;
    return std::make_unique<core::MlTreeBalancer>(models.popularity, p,
                                                  trigger);
  }
  if (name == "origami") {
    core::OrigamiBalancer::Params p;
    p.cache_enabled = opt.cache_enabled;
    p.cache_depth = opt.cache_depth;
    return std::make_unique<core::OrigamiBalancer>(
        models.benefit, cost::CostModel(opt.cost_params), p, trigger);
  }
  if (name == "meta-opt") {
    core::MetaOptParams p;
    p.cache_enabled = opt.cache_enabled;
    p.cache_depth = opt.cache_depth;
    return std::make_unique<core::MetaOptOracleBalancer>(
        cost::CostModel(opt.cost_params), p, trigger);
  }
  return nullptr;
}

TEST_F(PolicyGolden, RegistryReproducesLegacyConstructionsByteIdentically) {
  const char* kLegacy[] = {"single", "c-hash", "f-hash", "fixed",
                           "ml-tree", "origami", "meta-opt"};
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const wl::Trace trace = small_rw(seed);
    for (const bool faulty : {false, true}) {
      ReplayOptions opt = small_options(/*seed=*/seed + 100);
      if (faulty) opt = with_faults(opt);

      cluster::StaticBalancer fhash(cluster::StaticBalancer::Kind::kFineHash);
      const RunResult converged = cluster::replay_trace(trace, opt, fhash);

      for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        common::set_analysis_threads(threads);
        for (const char* name : kLegacy) {
          const std::string label =
              std::string(name) + " seed=" + std::to_string(seed) +
              (faulty ? " faults" : " clean") +
              " threads=" + std::to_string(threads);

          auto direct = direct_construct(name, opt, *models_, &converged);
          ASSERT_NE(direct, nullptr) << label;
          const RunResult want = cluster::replay_trace(trace, opt, *direct);

          policy::PolicyContext ctx;
          ctx.options = &opt;
          ctx.benefit_model = models_->benefit;
          ctx.popularity_model = models_->popularity;
          ctx.converged = &converged;
          auto made = Registry::builtin().make(name, ctx);
          ASSERT_TRUE(made.is_ok()) << label;
          auto from_registry = std::move(made).value();
          const RunResult got =
              cluster::replay_trace(trace, opt, *from_registry);

          expect_identical(want, got, label);
        }
      }
      common::set_analysis_threads(1);
    }
  }
}

// ---------------------------------------------------- observer ordering --

/// Serialises every hook invocation into a tagged line, so two runs can be
/// compared as whole event streams.
class RecordingObserver final : public engine::Observer {
 public:
  void on_epoch_begin(const cluster::EpochSnapshot& snap) override {
    add("begin:" + std::to_string(snap.epoch));
  }
  void on_decisions(
      std::uint32_t epoch,
      std::span<const cluster::MigrationDecision> ds) override {
    add("decide:" + std::to_string(epoch) + ":" + std::to_string(ds.size()));
  }
  void on_migration_phase(const engine::MigrationPhaseEvent& ev) override {
    add("mig:" + std::to_string(static_cast<int>(ev.phase)) + ":" +
        std::to_string(ev.subtree) + ":" + std::to_string(ev.from) + ">" +
        std::to_string(ev.to) + "@" + std::to_string(ev.at));
  }
  void on_fault(const engine::FaultEvent& ev) override {
    add("fault:" + std::to_string(static_cast<int>(ev.kind)) + ":" +
        std::to_string(ev.mds) + "@" + std::to_string(ev.at));
  }
  void on_epoch_end(const cluster::EpochMetrics& em,
                    const engine::EpochCounters& delta) override {
    add("end:" + std::to_string(delta.epoch) + ":" +
        std::to_string(em.migrations) + ":" +
        std::to_string(delta.completed_ops) + ":" +
        std::to_string(delta.committed_migrations) + ":" +
        std::to_string(delta.aborted_migrations) + ":" +
        std::to_string(delta.fenced_rejections));
  }
  void on_run_end(const cluster::RunResult& result) override {
    add("run_end:" + std::to_string(result.completed_ops));
  }

  std::vector<std::string> events;

 private:
  void add(std::string s) { events.push_back(std::move(s)); }
};

TEST(ObserverBus, HookSequenceIsDeterministicAcrossThreadCounts) {
  const wl::Trace trace = small_rw(/*seed=*/7, /*ops=*/12'000);
  const ReplayOptions opt = with_faults(small_options(/*seed=*/21));

  auto run_with = [&](std::size_t threads) {
    common::set_analysis_threads(threads);
    RecordingObserver obs;
    ReplayOptions o = opt;
    o.observers.push_back(&obs);
    policy::PolicyContext ctx;
    ctx.options = &o;
    auto made = Registry::builtin().make("greedy-spill:trigger=0.02", ctx);
    EXPECT_TRUE(made.is_ok());
    auto balancer = std::move(made).value();
    cluster::replay_trace(trace, o, *balancer);
    common::set_analysis_threads(1);
    return obs.events;
  };

  const std::vector<std::string> at1 = run_with(1);
  const std::vector<std::string> at8 = run_with(8);
  EXPECT_EQ(at1, at8);

  // Shape: interleaved begin/decide/end triples, one run_end, and a
  // well-formed stream overall.
  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1.back().rfind("run_end:", 0), 0u);
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t run_ends = 0;
  for (const std::string& e : at1) {
    begins += e.rfind("begin:", 0) == 0;
    ends += e.rfind("end:", 0) == 0;
    run_ends += e.rfind("run_end:", 0) == 0;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(run_ends, 1u);
}

TEST(ObserverBus, ObservedRunIsByteIdenticalToUnobservedRun) {
  const wl::Trace trace = small_rw(/*seed=*/13);
  const ReplayOptions opt = with_faults(small_options(/*seed=*/31));
  policy::PolicyContext ctx;
  ctx.options = &opt;

  auto plain = Registry::builtin().make("load-frac", ctx);
  ASSERT_TRUE(plain.is_ok());
  auto b1 = std::move(plain).value();
  const RunResult want = cluster::replay_trace(trace, opt, *b1);

  RecordingObserver obs;
  ReplayOptions observed = opt;
  observed.observers.push_back(&obs);
  auto made = Registry::builtin().make("load-frac", ctx);
  ASSERT_TRUE(made.is_ok());
  auto b2 = std::move(made).value();
  const RunResult got = cluster::replay_trace(trace, observed, *b2);

  expect_identical(want, got, "load-frac observed-vs-plain");
  EXPECT_FALSE(obs.events.empty());
}

}  // namespace
}  // namespace origami
