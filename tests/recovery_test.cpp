// Tests for the durable-recovery subsystem (origami::recovery): the
// per-MDS metadata journal (fsync/checkpoint pricing, torn-tail repair),
// the namespace invariant checker on hand-built ledgers, and the replay
// integration (journaled failover, two-phase migration, epoch fencing).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "origami/cluster/replay.hpp"
#include "origami/common/rng.hpp"
#include "origami/core/balancers.hpp"
#include "origami/core/features.hpp"
#include "origami/core/live_balancer.hpp"
#include "origami/fs/live_replay.hpp"
#include "origami/fsns/dir_tree.hpp"
#include "origami/recovery/invariants.hpp"
#include "origami/recovery/journal.hpp"
#include "origami/wl/generators.hpp"

namespace origami {
namespace {

using recovery::JournalRecordKind;
using recovery::MetadataJournal;
using recovery::NamespaceInvariantChecker;
using recovery::RecoveryLedger;
using recovery::RecoveryParams;

// ----------------------------------------------------------------- journal --

TEST(MetadataJournal, AppendsChargeFsyncAndAdvanceSeqnos) {
  RecoveryParams p;
  MetadataJournal j(p);
  EXPECT_EQ(j.append_op(1, 5), p.t_fsync);
  EXPECT_EQ(j.append_op(2, 6), p.t_fsync);
  EXPECT_EQ(j.last_seqno(), 2u);
  EXPECT_EQ(j.appended(), 2u);
  EXPECT_EQ(j.checkpoints(), 0u);

  const auto view = j.snapshot();
  ASSERT_EQ(view.live.size(), 2u);
  EXPECT_EQ(view.live[0].kind, JournalRecordKind::kOp);
  EXPECT_EQ(view.live[0].op_id, 1u);
  EXPECT_EQ(view.live[0].node, 5u);
  EXPECT_EQ(view.live[1].op_id, 2u);
  EXPECT_LT(view.live[0].seqno, view.live[1].seqno);
}

TEST(MetadataJournal, MigrationRecordsRoundTrip) {
  RecoveryParams p;
  MetadataJournal j(p);
  EXPECT_EQ(j.append_migration(JournalRecordKind::kPrepare, 9, 1, 2, 7),
            p.t_fsync);
  (void)j.append_migration(JournalRecordKind::kCommit, 9, 1, 2, 8);

  const auto view = j.snapshot();
  ASSERT_EQ(view.live.size(), 2u);
  EXPECT_EQ(view.live[0].kind, JournalRecordKind::kPrepare);
  EXPECT_EQ(view.live[0].node, 9u);
  EXPECT_EQ(view.live[0].from, 1u);
  EXPECT_EQ(view.live[0].to, 2u);
  EXPECT_EQ(view.live[0].epoch, 7u);
  EXPECT_EQ(view.live[1].kind, JournalRecordKind::kCommit);
  EXPECT_EQ(view.live[1].epoch, 8u);
}

TEST(MetadataJournal, CheckpointFoldsAckedOpsAndResetsLog) {
  RecoveryParams p;
  p.checkpoint_every = 4;
  MetadataJournal j(p);
  EXPECT_EQ(j.append_op(1, 10), p.t_fsync);
  EXPECT_EQ(j.append_op(2, 11), p.t_fsync);
  EXPECT_EQ(j.append_op(3, 12), p.t_fsync);
  // The 4th append crosses the threshold: fsync + checkpoint charged.
  EXPECT_EQ(j.append_op(4, 13), p.t_fsync + p.t_checkpoint);
  EXPECT_EQ(j.checkpoints(), 1u);
  EXPECT_EQ(j.records_since_checkpoint(), 0u);

  auto view = j.snapshot();
  EXPECT_TRUE(view.live.empty());
  ASSERT_EQ(view.checkpointed_ops.size(), 4u);
  EXPECT_EQ(view.checkpointed_ops[0], 1u);
  EXPECT_EQ(view.checkpointed_ops[3], 4u);
  EXPECT_EQ(view.checkpoint_seqno, 4u);

  // Post-checkpoint appends land on the fresh log, above the watermark.
  (void)j.append_op(5, 14);
  view = j.snapshot();
  ASSERT_EQ(view.live.size(), 1u);
  EXPECT_GT(view.live[0].seqno, view.checkpoint_seqno);
}

TEST(MetadataJournal, TornTailTruncatedAndReplayPriced) {
  RecoveryParams p;
  MetadataJournal j(p);
  (void)j.append_op(1, 5);
  (void)j.append_op(2, 6);
  (void)j.append_op(3, 7);
  j.simulate_torn_write();

  const auto out = j.recover_replay();
  EXPECT_EQ(out.replayed_records, 3u);
  EXPECT_TRUE(out.torn_tail);
  EXPECT_GT(out.dropped_bytes, 0u);
  EXPECT_EQ(out.replay_time, p.t_replay_base + 3 * p.t_replay_per_record);
  EXPECT_EQ(j.torn_truncations(), 1u);

  // The log is clean after truncation: new appends survive a second scan.
  (void)j.append_op(4, 8);
  const auto again = j.recover_replay();
  EXPECT_EQ(again.replayed_records, 4u);
  EXPECT_FALSE(again.torn_tail);
  EXPECT_EQ(again.dropped_bytes, 0u);
}

// ---------------------------------------------------------------- checker --

struct CheckerFixture {
  fsns::DirTree tree;
  fsns::NodeId a, b, f;

  CheckerFixture() {
    a = tree.add_dir(fsns::kRootNode, "a");
    b = tree.add_dir(fsns::kRootNode, "b");
    f = tree.add_file(a, "f");
    tree.finalize();
  }

  /// A consistent run: everything on MDS 0, both MDSes alive, no history.
  [[nodiscard]] RecoveryLedger clean() const {
    RecoveryLedger led;
    led.mds_count = 2;
    led.initial_owner.assign(tree.size(), 0);
    led.final_owner.assign(tree.size(), 0);
    led.down_at_end.assign(2, false);
    led.journals.resize(2);
    return led;
  }
};

TEST(InvariantChecker, CleanLedgerPasses) {
  CheckerFixture fx;
  const auto report = NamespaceInvariantChecker::check(fx.tree, fx.clean());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.to_string().empty());
}

TEST(InvariantChecker, FlagsFragmentOwnedByDeadMds) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.final_owner[fx.b] = 1;
  led.transfers.push_back({fx.b, 0, 1, 1, sim::millis(5)});
  led.down_at_end[1] = true;  // owner died and nobody failed the dir over
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I1"), std::string::npos);
}

TEST(InvariantChecker, FlagsFileStrandedAwayFromParent) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.final_owner[fx.f] = 1;  // parent dir stays on 0
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I1"), std::string::npos);
}

TEST(InvariantChecker, HashedFilesExemptFromColocation) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.final_owner[fx.f] = 1;
  led.hash_file_inodes = true;  // fine-hash: files never follow the parent
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(InvariantChecker, FlagsTeleportedFragment) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.final_owner[fx.b] = 1;  // owner changed with no recorded transfer
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I3"), std::string::npos);
}

TEST(InvariantChecker, FlagsTransferFromWrongSource) {
  CheckerFixture fx;
  auto led = fx.clean();
  // Claims MDS 1 exported /b, but the fold says MDS 0 owned it.
  led.transfers.push_back({fx.b, 1, 0, 1, sim::millis(1)});
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I3"), std::string::npos);
}

TEST(InvariantChecker, FlagsMalformedTwoPhaseTraces) {
  CheckerFixture fx;
  {
    auto led = fx.clean();
    led.migrations.push_back(
        {JournalRecordKind::kCommit, fx.a, 0, 1, 1, sim::millis(1)});
    led.final_owner[fx.a] = 1;
    led.final_owner[fx.f] = 1;
    led.transfers.push_back({fx.a, 0, 1, 1, sim::millis(1)});
    const auto report = NamespaceInvariantChecker::check(fx.tree, led);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("COMMIT without a PREPARE"),
              std::string::npos);
  }
  {
    auto led = fx.clean();
    led.migrations.push_back(
        {JournalRecordKind::kPrepare, fx.a, 0, 1, 1, sim::millis(1)});
    led.migrations.push_back(
        {JournalRecordKind::kPrepare, fx.a, 0, 1, 2, sim::millis(2)});
    const auto report = NamespaceInvariantChecker::check(fx.tree, led);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("PREPAREd twice"), std::string::npos);
  }
  {
    auto led = fx.clean();  // commit epochs must strictly advance
    led.migrations.push_back(
        {JournalRecordKind::kPrepare, fx.b, 0, 1, 5, sim::millis(1)});
    led.migrations.push_back(
        {JournalRecordKind::kCommit, fx.b, 0, 1, 5, sim::millis(2)});
    led.migrations.push_back(
        {JournalRecordKind::kPrepare, fx.b, 1, 0, 5, sim::millis(3)});
    led.migrations.push_back(
        {JournalRecordKind::kCommit, fx.b, 1, 0, 5, sim::millis(4)});
    led.transfers.push_back({fx.b, 0, 1, 1, sim::millis(2)});
    led.transfers.push_back({fx.b, 1, 0, 2, sim::millis(4)});
    const auto report = NamespaceInvariantChecker::check(fx.tree, led);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("does not advance"), std::string::npos);
  }
}

TEST(InvariantChecker, TrailingPrepareIsLegalCrashArtifact) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.migrations.push_back(
      {JournalRecordKind::kPrepare, fx.a, 0, 1, 1, sim::millis(1)});
  // Crash before COMMIT: no transfer happened, source keeps the subtree.
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(InvariantChecker, FlagsNonMonotoneJournalSeqnos) {
  CheckerFixture fx;
  auto led = fx.clean();
  MetadataJournal::View view;
  view.checkpoint_seqno = 10;
  view.live.push_back({JournalRecordKind::kOp, 9, 1, 0, 0, 0, 0});
  led.journals[0] = view;
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I5"), std::string::npos);
}

TEST(InvariantChecker, FlagsAckedMutationMissingFromEveryJournal) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.acked_mutations.push_back(42);
  const auto missing = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.to_string().find("I6"), std::string::npos);

  // Durable either live in some journal or folded into a checkpoint.
  led.journals[1].checkpointed_ops.push_back(42);
  const auto folded = NamespaceInvariantChecker::check(fx.tree, led);
  EXPECT_TRUE(folded.ok()) << folded.to_string();
}

// ------------------------------------------------------------ integration --

cluster::ReplayOptions small_options() {
  cluster::ReplayOptions opt;
  opt.mds_count = 4;
  opt.clients = 16;
  opt.epoch_length = sim::millis(200);
  opt.warmup_epochs = 0;
  return opt;
}

wl::Trace small_trace() {
  wl::TraceRwConfig cfg;
  cfg.ops = 40'000;
  cfg.seed = 17;
  return wl::make_trace_rw(cfg);
}

/// Origami with a hand-written heuristic benefit model (activity share),
/// so migration-heavy integration tests need no GBDT training.
core::OrigamiBalancer heuristic_origami() {
  core::OrigamiBalancer::Params p;
  p.min_subtree_ops = 8;
  p.min_predicted_benefit = 0.0;
  core::BenefitPredictor pred = [](std::span<const float> feat) {
    return static_cast<double>(feat[3]) + static_cast<double>(feat[4]);
  };
  return core::OrigamiBalancer(std::move(pred), cost::CostModel{}, p,
                               core::RebalanceTrigger{0.0});
}

TEST(RecoveryReplay, CleanRunsCarryNoRecoveryState) {
  const auto trace = small_trace();
  const auto opt = small_options();  // faults disabled
  cluster::StaticBalancer balancer(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, balancer);
  EXPECT_EQ(r.faults.journal_records, 0u);
  EXPECT_EQ(r.faults.journal_replays, 0u);
  EXPECT_EQ(r.faults.fenced_rejections, 0u);
  EXPECT_EQ(r.ledger, nullptr);
}

TEST(RecoveryReplay, CrashTriggersJournalReplayAndWindowedRecovery) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  fault::FaultWindow w;
  w.mds = 2;
  w.kind = fault::FaultKind::kCrash;
  w.from = sim::millis(250);
  w.until = sim::millis(450);
  opt.faults.scheduled.push_back(w);
  cluster::StaticBalancer balancer(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_GT(r.faults.journal_records, 0u);
  EXPECT_EQ(r.faults.journal_replays, 1u);
  EXPECT_GT(r.faults.journal_replayed_records, 0u);
  EXPECT_EQ(r.faults.torn_tail_truncations, 1u);  // crash tore the tail
  EXPECT_EQ(r.faults.recovery_windows, 1u);
  EXPECT_GT(r.faults.recovery_window_time, 0);
  EXPECT_GT(r.faults.recovery_queue_time, 0);

  ASSERT_NE(r.ledger, nullptr);
  EXPECT_FALSE(r.ledger->acked_mutations.empty());
  const auto report = NamespaceInvariantChecker::check(trace.tree, *r.ledger);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(RecoveryReplay, TwoPhaseMigrationSurvivesCrashWithOneOwner) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  // Crash an MDS mid-run while the balancer is actively migrating: every
  // fragment must end with exactly one live committed owner.
  fault::FaultWindow w;
  w.mds = 1;
  w.kind = fault::FaultKind::kCrash;
  w.from = sim::millis(420);
  w.until = sim::seconds(3600);  // never comes back
  opt.faults.scheduled.push_back(w);
  auto balancer = heuristic_origami();
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_GT(r.faults.prepared_migrations, 0u);
  EXPECT_GE(r.faults.prepared_migrations, r.faults.committed_migrations);
  for (std::uint32_t owner : r.final_dir_owner) EXPECT_NE(owner, 1u);

  ASSERT_NE(r.ledger, nullptr);
  const auto report = NamespaceInvariantChecker::check(trace.tree, *r.ledger);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(RecoveryReplay, StaleEpochRequestsAreFencedAndRerouted) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  // Stragglers stretch the window between planning a request and its
  // arrival, so live migrations race ahead of in-flight requests.
  opt.faults.seed = 7;
  opt.faults.straggler_prob = 0.4;
  opt.faults.straggler_slow = 5.0;
  opt.faults.straggler_duration = sim::millis(150);
  auto balancer = heuristic_origami();
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_GT(r.faults.committed_migrations, 0u);
  EXPECT_GT(r.faults.fenced_rejections, 0u);
  // Fenced requests are re-routed, not failed: the run still completes.
  EXPECT_EQ(r.completed_ops + r.faults.failed_ops, 40'000u);
  ASSERT_NE(r.ledger, nullptr);
  const auto report = NamespaceInvariantChecker::check(trace.tree, *r.ledger);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ----------------------------------------------------- live-mode recovery --

/// Activity-share benefit model, trained in-test (the live balancer takes a
/// GbdtModel, not a raw predictor).
std::shared_ptr<ml::GbdtModel> live_benefit_model() {
  ml::Dataset data(core::feature_name_vector());
  common::Xoshiro256 rng(5);
  std::vector<float> row(core::kFeatureCount);
  for (int i = 0; i < 1'500; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.uniform_double());
    data.add_row(row, row[3] + row[4]);
  }
  ml::GbdtParams params;
  params.rounds = 30;
  return std::make_shared<ml::GbdtModel>(ml::GbdtModel::train(data, params));
}

TEST(LiveRecovery, TwoPhaseAbortRollsBackAndPairsPhases) {
  wl::TraceRwConfig cfg;
  cfg.ops = 40'000;
  cfg.projects = 6;
  cfg.modules_per_project = 4;
  cfg.sources_per_module = 10;
  cfg.headers_shared = 60;
  cfg.seed = 31;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;
  fs::OrigamiFs fsys(fopt);

  const auto model = live_benefit_model();
  std::uint64_t aborts_seen = 0;
  std::uint64_t commits_seen = 0;

  fs::LiveReplayOptions opt;
  opt.epoch_ops = 8'000;
  // Arm the fault layer (journals, two-phase accounting) without letting a
  // crash interfere: the only scheduled window opens far past the trace.
  opt.faults.scheduled.push_back(
      {0, 10'000'000, 10'000'100, fault::FaultKind::kCrash, 1.0});
  opt.on_epoch = [&](fs::OrigamiFs& f,
                     fs::LiveFaultContext& ctx) -> std::uint64_t {
    core::LiveOrigamiBalancer::Params p;
    p.min_subtree_ops = 16;
    p.min_predicted_benefit = 0.0;
    // Sabotage: the first move's destination "dies" right after PREPARE,
    // forcing the commit check to roll the subtree back to its source.
    auto doomed = std::make_shared<std::uint32_t>(UINT32_MAX);
    p.shard_down = [doomed, &ctx](std::uint32_t s) {
      return s == *doomed || ctx.shard_down(s);
    };
    p.on_phase = [&, doomed](core::MigrationPhase ph,
                             const core::LiveOrigamiBalancer::Move& m) {
      if (ph == core::MigrationPhase::kPrepare) {
        ctx.record_prepare(m.subtree, m.from, m.to);
        if (*doomed == UINT32_MAX) *doomed = m.to;
      } else if (ph == core::MigrationPhase::kCommit) {
        ++commits_seen;
        ctx.record_commit(m.subtree, m.from, m.to);
      } else {
        ++aborts_seen;
        ctx.record_abort(m.subtree, m.from, m.to);
        // The rollback already ran: the subtree is home again.
        EXPECT_EQ(f.dir_shard(m.subtree), m.from);
      }
    };
    core::LiveOrigamiBalancer balancer(model, p);
    return balancer.rebalance_epoch(f).size();
  };

  const auto stats = fs::replay_on_live(trace, fsys, opt);
  EXPECT_GT(stats.epochs, 2u);
  EXPECT_GT(stats.faults.prepared_migrations, 0u);
  EXPECT_GT(stats.faults.aborted_migrations, 0u);
  // Every PREPARE resolves to exactly one COMMIT or ABORT.
  EXPECT_EQ(
      stats.faults.prepared_migrations,
      stats.faults.committed_migrations + stats.faults.aborted_migrations);
  EXPECT_EQ(stats.faults.aborted_migrations, aborts_seen);
  EXPECT_EQ(stats.faults.committed_migrations, commits_seen);
  EXPECT_GT(stats.faults.journal_records, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(RecoveryReplay, RecoveryModelIsDeterministic) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  opt.faults.seed = 90;
  opt.faults.crash_prob = 0.10;
  opt.faults.crash_recovery = sim::millis(150);
  cluster::StaticBalancer a(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto ra = cluster::replay_trace(trace, opt, a);
  const auto rb = cluster::replay_trace(trace, opt, b);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.faults.journal_records, rb.faults.journal_records);
  EXPECT_EQ(ra.faults.journal_replayed_records,
            rb.faults.journal_replayed_records);
  EXPECT_EQ(ra.faults.fenced_rejections, rb.faults.fenced_rejections);
  EXPECT_EQ(ra.faults.recovery_queue_time, rb.faults.recovery_queue_time);
}

}  // namespace
}  // namespace origami
