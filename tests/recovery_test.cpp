// Tests for the durable-recovery subsystem (origami::recovery): the
// per-MDS metadata journal (fsync/checkpoint pricing, torn-tail repair),
// the namespace invariant checker on hand-built ledgers, and the replay
// integration (journaled failover, two-phase migration, epoch fencing).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "origami/cluster/replay.hpp"
#include "origami/common/rng.hpp"
#include "origami/core/balancers.hpp"
#include "origami/core/features.hpp"
#include "origami/core/live_balancer.hpp"
#include "origami/fs/live_replay.hpp"
#include "origami/fsns/dir_tree.hpp"
#include "origami/recovery/invariants.hpp"
#include "origami/recovery/journal.hpp"
#include "origami/wl/generators.hpp"

namespace origami {
namespace {

using recovery::JournalRecordKind;
using recovery::MetadataJournal;
using recovery::NamespaceInvariantChecker;
using recovery::RecoveryLedger;
using recovery::RecoveryParams;

// ----------------------------------------------------------------- journal --

TEST(MetadataJournal, AppendsChargeFsyncAndAdvanceSeqnos) {
  RecoveryParams p;
  MetadataJournal j(p);
  EXPECT_EQ(j.append_op(1, 5), p.t_fsync);
  EXPECT_EQ(j.append_op(2, 6), p.t_fsync);
  EXPECT_EQ(j.last_seqno(), 2u);
  EXPECT_EQ(j.appended(), 2u);
  EXPECT_EQ(j.checkpoints(), 0u);

  const auto view = j.snapshot();
  ASSERT_EQ(view.live.size(), 2u);
  EXPECT_EQ(view.live[0].kind, JournalRecordKind::kOp);
  EXPECT_EQ(view.live[0].op_id, 1u);
  EXPECT_EQ(view.live[0].node, 5u);
  EXPECT_EQ(view.live[1].op_id, 2u);
  EXPECT_LT(view.live[0].seqno, view.live[1].seqno);
}

TEST(MetadataJournal, MigrationRecordsRoundTrip) {
  RecoveryParams p;
  MetadataJournal j(p);
  EXPECT_EQ(j.append_migration(JournalRecordKind::kPrepare, 9, 1, 2, 7),
            p.t_fsync);
  (void)j.append_migration(JournalRecordKind::kCommit, 9, 1, 2, 8);

  const auto view = j.snapshot();
  ASSERT_EQ(view.live.size(), 2u);
  EXPECT_EQ(view.live[0].kind, JournalRecordKind::kPrepare);
  EXPECT_EQ(view.live[0].node, 9u);
  EXPECT_EQ(view.live[0].from, 1u);
  EXPECT_EQ(view.live[0].to, 2u);
  EXPECT_EQ(view.live[0].epoch, 7u);
  EXPECT_EQ(view.live[1].kind, JournalRecordKind::kCommit);
  EXPECT_EQ(view.live[1].epoch, 8u);
}

TEST(MetadataJournal, CheckpointFoldsAckedOpsAndResetsLog) {
  RecoveryParams p;
  p.checkpoint_every = 4;
  MetadataJournal j(p);
  EXPECT_EQ(j.append_op(1, 10), p.t_fsync);
  EXPECT_EQ(j.append_op(2, 11), p.t_fsync);
  EXPECT_EQ(j.append_op(3, 12), p.t_fsync);
  // The 4th append crosses the threshold: fsync + checkpoint charged.
  EXPECT_EQ(j.append_op(4, 13), p.t_fsync + p.t_checkpoint);
  EXPECT_EQ(j.checkpoints(), 1u);
  EXPECT_EQ(j.records_since_checkpoint(), 0u);

  auto view = j.snapshot();
  EXPECT_TRUE(view.live.empty());
  ASSERT_EQ(view.checkpointed_ops.size(), 4u);
  EXPECT_EQ(view.checkpointed_ops[0], 1u);
  EXPECT_EQ(view.checkpointed_ops[3], 4u);
  EXPECT_EQ(view.checkpoint_seqno, 4u);

  // Post-checkpoint appends land on the fresh log, above the watermark.
  (void)j.append_op(5, 14);
  view = j.snapshot();
  ASSERT_EQ(view.live.size(), 1u);
  EXPECT_GT(view.live[0].seqno, view.checkpoint_seqno);
}

TEST(MetadataJournal, TornTailTruncatedAndReplayPriced) {
  RecoveryParams p;
  MetadataJournal j(p);
  (void)j.append_op(1, 5);
  (void)j.append_op(2, 6);
  (void)j.append_op(3, 7);
  j.simulate_torn_write();

  const auto out = j.recover_replay();
  EXPECT_EQ(out.replayed_records, 3u);
  EXPECT_TRUE(out.torn_tail);
  EXPECT_GT(out.dropped_bytes, 0u);
  EXPECT_EQ(out.replay_time, p.t_replay_base + 3 * p.t_replay_per_record);
  EXPECT_EQ(j.torn_truncations(), 1u);

  // The log is clean after truncation: new appends survive a second scan.
  (void)j.append_op(4, 8);
  const auto again = j.recover_replay();
  EXPECT_EQ(again.replayed_records, 4u);
  EXPECT_FALSE(again.torn_tail);
  EXPECT_EQ(again.dropped_bytes, 0u);
}

// ----------------------------------------------------------- async commit --

RecoveryParams async_params() {
  RecoveryParams p;
  p.commit_mode = recovery::CommitMode::kAsync;
  return p;
}

TEST(MetadataJournal, AsyncAppendsBufferUntilGroupCommit) {
  const RecoveryParams p = async_params();
  MetadataJournal j(p);
  // Memtable-apply completion: no durability charge at append time.
  EXPECT_EQ(j.append_op(1, 5, sim::micros(10)), 0);
  EXPECT_EQ(j.append_op(2, 6, sim::micros(20)), 0);
  EXPECT_EQ(j.pending_records(), 2u);
  EXPECT_EQ(j.oldest_pending_at(), sim::micros(10));
  EXPECT_TRUE(j.snapshot().live.empty());  // nothing in the WAL yet

  // Op 1 is acked before the flush: it rides the durability window.
  j.note_acked(1, sim::micros(12));
  EXPECT_EQ(j.flush(sim::micros(30)), p.t_fsync);  // one fsync for the batch
  EXPECT_EQ(j.pending_records(), 0u);
  EXPECT_EQ(j.group_commits(), 1u);
  EXPECT_EQ(j.group_commit_records(), 2u);
  EXPECT_EQ(j.durability().max_ack_to_durable(), sim::micros(18));

  const auto view = j.snapshot();
  ASSERT_EQ(view.live.size(), 2u);
  EXPECT_EQ(view.live[0].op_id, 1u);
  EXPECT_EQ(view.live[1].op_id, 2u);
  EXPECT_LT(view.live[0].seqno, view.live[1].seqno);

  // Nothing pending: a second flush is free and not a group commit.
  EXPECT_EQ(j.flush(sim::micros(40)), 0);
  EXPECT_EQ(j.group_commits(), 1u);
}

TEST(MetadataJournal, AsyncCrashDropsPendingAndClassifiesLosses) {
  MetadataJournal j(async_params());
  (void)j.append_op(1, 5, sim::micros(10));
  (void)j.append_op(2, 6, sim::micros(20));
  (void)j.append_op(3, 7, sim::micros(30));
  j.note_acked(1, sim::micros(12));
  j.note_acked(2, sim::micros(22));

  const auto loss = j.crash_drop_pending(sim::micros(50));
  ASSERT_EQ(loss.acked_lost.size(), 2u);
  EXPECT_EQ(loss.unacked_lost, 1u);
  EXPECT_EQ(loss.acked_lost[0].op_id, 1u);
  EXPECT_EQ(loss.acked_lost[0].acked_at, sim::micros(12));
  EXPECT_EQ(loss.acked_lost[0].lost_at, sim::micros(50));
  EXPECT_EQ(j.pending_records(), 0u);
  EXPECT_TRUE(j.snapshot().live.empty());  // the buffer never hit the WAL
  // The drop bumped the generation, so a stale flush timer would no-op,
  // and there is nothing left for a flush to commit.
  EXPECT_EQ(j.flush_generation(), 1u);
  EXPECT_EQ(j.flush(sim::micros(60)), 0);

  // An ack that was in flight at the crash still lands in the history:
  // finalization re-classifies op 3 as acked-but-lost from these stamps.
  j.note_acked(3, sim::micros(70));
  const auto& hist = j.durability().history();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[2].op_id, 3u);
  EXPECT_EQ(hist[2].acked_at, sim::micros(70));
  EXPECT_EQ(hist[2].lost_at, sim::micros(50));
}

TEST(MetadataJournal, AsyncMigrationRecordsFlushPendingFirst) {
  const RecoveryParams p = async_params();
  MetadataJournal j(p);
  (void)j.append_op(1, 5, sim::micros(10));
  (void)j.append_op(2, 6, sim::micros(20));
  // Protocol records are durable on return: the pending batch group-commits
  // first (one fsync) and the PREPARE pays its own (second fsync), so the
  // WAL order stays seqno order for I5.
  EXPECT_EQ(j.append_migration(JournalRecordKind::kPrepare, 9, 0, 1, 3,
                               sim::micros(40)),
            2 * p.t_fsync);
  EXPECT_EQ(j.pending_records(), 0u);
  EXPECT_EQ(j.group_commits(), 1u);

  const auto view = j.snapshot();
  ASSERT_EQ(view.live.size(), 3u);
  EXPECT_EQ(view.live[0].op_id, 1u);
  EXPECT_EQ(view.live[1].op_id, 2u);
  EXPECT_EQ(view.live[2].kind, JournalRecordKind::kPrepare);
  EXPECT_LT(view.live[0].seqno, view.live[1].seqno);
  EXPECT_LT(view.live[1].seqno, view.live[2].seqno);
}

// ------------------------------------------------------- checkpoint edges --

TEST(MetadataJournal, CheckpointOnEmptyJournalIsConsistent) {
  RecoveryParams p;
  MetadataJournal j(p);
  EXPECT_EQ(j.checkpoint_now(), p.t_checkpoint);
  EXPECT_EQ(j.checkpoints(), 1u);

  auto view = j.snapshot();
  EXPECT_TRUE(view.live.empty());
  EXPECT_TRUE(view.checkpointed_ops.empty());
  EXPECT_EQ(view.checkpoint_seqno, 0u);

  // Post-checkpoint appends land above the (zero) watermark and replay.
  (void)j.append_op(1, 4);
  view = j.snapshot();
  ASSERT_EQ(view.live.size(), 1u);
  EXPECT_GT(view.live[0].seqno, view.checkpoint_seqno);
  const auto out = j.recover_replay();
  EXPECT_EQ(out.replayed_records, 1u);
  EXPECT_FALSE(out.torn_tail);
}

TEST(MetadataJournal, CrashInsideCheckpointTruncatesAndKeepsFoldedOps) {
  RecoveryParams p;
  MetadataJournal j(p);
  (void)j.append_op(1, 5);
  (void)j.append_op(2, 6);
  (void)j.append_op(3, 7);
  // The crash lands while the checkpoint fold is scanning the log: the torn
  // partial record must be truncated AND accounted, while every complete
  // op still folds into the summary.
  j.simulate_torn_write();
  EXPECT_EQ(j.checkpoint_now(), p.t_checkpoint);
  EXPECT_EQ(j.torn_truncations(), 1u);

  const auto view = j.snapshot();
  EXPECT_TRUE(view.live.empty());
  ASSERT_EQ(view.checkpointed_ops.size(), 3u);
  EXPECT_EQ(view.checkpointed_ops[0], 1u);
  EXPECT_EQ(view.checkpointed_ops[2], 3u);

  // The reset log is clean: recovery finds nothing torn.
  const auto out = j.recover_replay();
  EXPECT_EQ(out.replayed_records, 0u);
  EXPECT_FALSE(out.torn_tail);
  EXPECT_EQ(j.torn_truncations(), 1u);
}

// ---------------------------------------------------------------- checker --

struct CheckerFixture {
  fsns::DirTree tree;
  fsns::NodeId a, b, f;

  CheckerFixture() {
    a = tree.add_dir(fsns::kRootNode, "a");
    b = tree.add_dir(fsns::kRootNode, "b");
    f = tree.add_file(a, "f");
    tree.finalize();
  }

  /// A consistent run: everything on MDS 0, both MDSes alive, no history.
  [[nodiscard]] RecoveryLedger clean() const {
    RecoveryLedger led;
    led.mds_count = 2;
    led.initial_owner.assign(tree.size(), 0);
    led.final_owner.assign(tree.size(), 0);
    led.down_at_end.assign(2, false);
    led.journals.resize(2);
    return led;
  }
};

TEST(InvariantChecker, CleanLedgerPasses) {
  CheckerFixture fx;
  const auto report = NamespaceInvariantChecker::check(fx.tree, fx.clean());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.to_string().empty());
}

TEST(InvariantChecker, FlagsFragmentOwnedByDeadMds) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.final_owner[fx.b] = 1;
  led.transfers.push_back({fx.b, 0, 1, 1, sim::millis(5)});
  led.down_at_end[1] = true;  // owner died and nobody failed the dir over
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I1"), std::string::npos);
}

TEST(InvariantChecker, FlagsFileStrandedAwayFromParent) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.final_owner[fx.f] = 1;  // parent dir stays on 0
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I1"), std::string::npos);
}

TEST(InvariantChecker, HashedFilesExemptFromColocation) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.final_owner[fx.f] = 1;
  led.hash_file_inodes = true;  // fine-hash: files never follow the parent
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(InvariantChecker, FlagsTeleportedFragment) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.final_owner[fx.b] = 1;  // owner changed with no recorded transfer
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I3"), std::string::npos);
}

TEST(InvariantChecker, FlagsTransferFromWrongSource) {
  CheckerFixture fx;
  auto led = fx.clean();
  // Claims MDS 1 exported /b, but the fold says MDS 0 owned it.
  led.transfers.push_back({fx.b, 1, 0, 1, sim::millis(1)});
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I3"), std::string::npos);
}

TEST(InvariantChecker, FlagsMalformedTwoPhaseTraces) {
  CheckerFixture fx;
  {
    auto led = fx.clean();
    led.migrations.push_back(
        {JournalRecordKind::kCommit, fx.a, 0, 1, 1, sim::millis(1)});
    led.final_owner[fx.a] = 1;
    led.final_owner[fx.f] = 1;
    led.transfers.push_back({fx.a, 0, 1, 1, sim::millis(1)});
    const auto report = NamespaceInvariantChecker::check(fx.tree, led);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("COMMIT without a PREPARE"),
              std::string::npos);
  }
  {
    auto led = fx.clean();
    led.migrations.push_back(
        {JournalRecordKind::kPrepare, fx.a, 0, 1, 1, sim::millis(1)});
    led.migrations.push_back(
        {JournalRecordKind::kPrepare, fx.a, 0, 1, 2, sim::millis(2)});
    const auto report = NamespaceInvariantChecker::check(fx.tree, led);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("PREPAREd twice"), std::string::npos);
  }
  {
    auto led = fx.clean();  // commit epochs must strictly advance
    led.migrations.push_back(
        {JournalRecordKind::kPrepare, fx.b, 0, 1, 5, sim::millis(1)});
    led.migrations.push_back(
        {JournalRecordKind::kCommit, fx.b, 0, 1, 5, sim::millis(2)});
    led.migrations.push_back(
        {JournalRecordKind::kPrepare, fx.b, 1, 0, 5, sim::millis(3)});
    led.migrations.push_back(
        {JournalRecordKind::kCommit, fx.b, 1, 0, 5, sim::millis(4)});
    led.transfers.push_back({fx.b, 0, 1, 1, sim::millis(2)});
    led.transfers.push_back({fx.b, 1, 0, 2, sim::millis(4)});
    const auto report = NamespaceInvariantChecker::check(fx.tree, led);
    ASSERT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("does not advance"), std::string::npos);
  }
}

TEST(InvariantChecker, TrailingPrepareIsLegalCrashArtifact) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.migrations.push_back(
      {JournalRecordKind::kPrepare, fx.a, 0, 1, 1, sim::millis(1)});
  // Crash before COMMIT: no transfer happened, source keeps the subtree.
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(InvariantChecker, FlagsNonMonotoneJournalSeqnos) {
  CheckerFixture fx;
  auto led = fx.clean();
  MetadataJournal::View view;
  view.checkpoint_seqno = 10;
  view.live.push_back({JournalRecordKind::kOp, 9, 1, 0, 0, 0, 0});
  led.journals[0] = view;
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I5"), std::string::npos);
}

TEST(InvariantChecker, FlagsAckedMutationMissingFromEveryJournal) {
  CheckerFixture fx;
  auto led = fx.clean();
  led.acked_mutations.push_back(42);
  const auto missing = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.to_string().find("I6"), std::string::npos);

  // Durable either live in some journal or folded into a checkpoint.
  led.journals[1].checkpointed_ops.push_back(42);
  const auto folded = NamespaceInvariantChecker::check(fx.tree, led);
  EXPECT_TRUE(folded.ok()) << folded.to_string();
}

using recovery::DurabilityWindow;

/// Switches a clean ledger into async-commit mode with a small contract.
RecoveryLedger async_ledger(const CheckerFixture& fx) {
  RecoveryLedger led = fx.clean();
  led.async_commit = true;
  led.commit_window = sim::micros(100);
  led.commit_batch = 4;
  led.durability.resize(2);
  return led;
}

DurabilityWindow::OpRecord lost_record(std::uint64_t op_id,
                                       sim::SimTime appended,
                                       sim::SimTime acked, sim::SimTime lost) {
  DurabilityWindow::OpRecord rec;
  rec.op_id = op_id;
  rec.appended_at = appended;
  rec.acked_at = acked;
  rec.lost_at = lost;
  return rec;
}

TEST(InvariantChecker, AsyncReportedAckedLossSatisfiesI6) {
  CheckerFixture fx;
  auto led = async_ledger(fx);
  led.acked_mutations.push_back(42);
  // The crash path reported the loss: acked-but-lost is legal in async
  // mode as long as it is never silent.
  led.durability[0].push_back(
      lost_record(42, sim::micros(10), sim::micros(12), sim::micros(80)));
  const auto reported = NamespaceInvariantChecker::check(fx.tree, led);
  EXPECT_TRUE(reported.ok()) << reported.to_string();

  const auto audit = recovery::audit_durability(led);
  EXPECT_EQ(audit.acked_lost, 1u);
  EXPECT_EQ(audit.acked_durable, 0u);
  EXPECT_EQ(audit.unacked_lost_records, 0u);

  // The same missing op with NO loss report is still an I6 violation.
  led.durability[0].clear();
  const auto silent = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(silent.ok());
  EXPECT_NE(silent.to_string().find("I6"), std::string::npos);
  EXPECT_NE(silent.to_string().find("never reported lost"), std::string::npos);
}

TEST(InvariantChecker, FlagsDurableOpVanished) {
  CheckerFixture fx;
  auto led = async_ledger(fx);
  // A group commit stamped op 7 durable, but no journal holds it: I7.
  DurabilityWindow::OpRecord rec;
  rec.op_id = 7;
  rec.appended_at = sim::micros(1);
  rec.acked_at = sim::micros(2);
  rec.durable_at = sim::micros(3);
  led.durability[1].push_back(rec);
  const auto vanished = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(vanished.ok());
  EXPECT_NE(vanished.to_string().find("I7"), std::string::npos);

  // Folded into a checkpoint counts as retained.
  led.journals[0].checkpointed_ops.push_back(7);
  const auto folded = NamespaceInvariantChecker::check(fx.tree, led);
  EXPECT_TRUE(folded.ok()) << folded.to_string();
}

TEST(InvariantChecker, FlagsAckedLossBeyondWindowBound) {
  CheckerFixture fx;
  auto led = async_ledger(fx);
  // Buffered lifetime 150us exceeds the 100us window: the flush timer
  // would have fired first, so this loss breaks the contract (I8).
  led.durability[0].push_back(
      lost_record(11, sim::micros(0), sim::micros(10), sim::micros(150)));
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I8"), std::string::npos);
  EXPECT_NE(report.to_string().find("commit window"), std::string::npos);
}

TEST(InvariantChecker, FlagsCrashLossBeyondBatchBound) {
  CheckerFixture fx;
  auto led = async_ledger(fx);
  led.commit_batch = 2;
  // One crash instant sweeping 3 records off one MDS exceeds batch=2 (I8);
  // each record's age stays inside the window so only the batch bound fires.
  for (std::uint64_t op = 1; op <= 3; ++op) {
    led.durability[0].push_back(lost_record(
        op, sim::micros(40 + op), sim::micros(45 + op), sim::micros(90)));
  }
  const auto report = NamespaceInvariantChecker::check(fx.tree, led);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("I8"), std::string::npos);
  EXPECT_NE(report.to_string().find("commit batch"), std::string::npos);

  // The same sweep within the batch bound is a legal crash artifact.
  led.commit_batch = 4;
  const auto within = NamespaceInvariantChecker::check(fx.tree, led);
  EXPECT_TRUE(within.ok()) << within.to_string();
}

// ------------------------------------------------------------ integration --

cluster::ReplayOptions small_options() {
  cluster::ReplayOptions opt;
  opt.mds_count = 4;
  opt.clients = 16;
  opt.epoch_length = sim::millis(200);
  opt.warmup_epochs = 0;
  return opt;
}

wl::Trace small_trace() {
  wl::TraceRwConfig cfg;
  cfg.ops = 40'000;
  cfg.seed = 17;
  return wl::make_trace_rw(cfg);
}

/// Origami with a hand-written heuristic benefit model (activity share),
/// so migration-heavy integration tests need no GBDT training.
core::OrigamiBalancer heuristic_origami() {
  core::OrigamiBalancer::Params p;
  p.min_subtree_ops = 8;
  p.min_predicted_benefit = 0.0;
  core::BenefitPredictor pred = [](std::span<const float> feat) {
    return static_cast<double>(feat[3]) + static_cast<double>(feat[4]);
  };
  return core::OrigamiBalancer(std::move(pred), cost::CostModel{}, p,
                               core::RebalanceTrigger{0.0});
}

TEST(RecoveryReplay, CleanRunsCarryNoRecoveryState) {
  const auto trace = small_trace();
  const auto opt = small_options();  // faults disabled
  cluster::StaticBalancer balancer(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, balancer);
  EXPECT_EQ(r.faults.journal_records, 0u);
  EXPECT_EQ(r.faults.journal_replays, 0u);
  EXPECT_EQ(r.faults.fenced_rejections, 0u);
  EXPECT_EQ(r.ledger, nullptr);
}

TEST(RecoveryReplay, CrashTriggersJournalReplayAndWindowedRecovery) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  fault::FaultWindow w;
  w.mds = 2;
  w.kind = fault::FaultKind::kCrash;
  w.from = sim::millis(250);
  w.until = sim::millis(450);
  opt.faults.scheduled.push_back(w);
  cluster::StaticBalancer balancer(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_GT(r.faults.journal_records, 0u);
  EXPECT_EQ(r.faults.journal_replays, 1u);
  EXPECT_GT(r.faults.journal_replayed_records, 0u);
  EXPECT_EQ(r.faults.torn_tail_truncations, 1u);  // crash tore the tail
  EXPECT_EQ(r.faults.recovery_windows, 1u);
  EXPECT_GT(r.faults.recovery_window_time, 0);
  EXPECT_GT(r.faults.recovery_queue_time, 0);

  ASSERT_NE(r.ledger, nullptr);
  EXPECT_FALSE(r.ledger->acked_mutations.empty());
  const auto report = NamespaceInvariantChecker::check(trace.tree, *r.ledger);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(RecoveryReplay, TwoPhaseMigrationSurvivesCrashWithOneOwner) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  // Crash an MDS mid-run while the balancer is actively migrating: every
  // fragment must end with exactly one live committed owner.
  fault::FaultWindow w;
  w.mds = 1;
  w.kind = fault::FaultKind::kCrash;
  w.from = sim::millis(420);
  w.until = sim::seconds(3600);  // never comes back
  opt.faults.scheduled.push_back(w);
  auto balancer = heuristic_origami();
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_GT(r.faults.prepared_migrations, 0u);
  EXPECT_GE(r.faults.prepared_migrations, r.faults.committed_migrations);
  for (std::uint32_t owner : r.final_dir_owner) EXPECT_NE(owner, 1u);

  ASSERT_NE(r.ledger, nullptr);
  const auto report = NamespaceInvariantChecker::check(trace.tree, *r.ledger);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(RecoveryReplay, BackToBackCrashesReplayTheJournalEachTime) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  // Same MDS crashes again at the very instant its first outage ends, i.e.
  // before the restore hands its fragments back: the second crash finds the
  // MDS owning nothing, but its journal must still be scanned (and the torn
  // tail truncated) or post-recovery appends would hide behind garbage.
  fault::FaultWindow w1;
  w1.mds = 2;
  w1.kind = fault::FaultKind::kCrash;
  w1.from = sim::millis(250);
  w1.until = sim::millis(300);
  fault::FaultWindow w2 = w1;
  w2.from = sim::millis(300);
  w2.until = sim::millis(420);
  opt.faults.scheduled.push_back(w1);
  opt.faults.scheduled.push_back(w2);
  cluster::StaticBalancer balancer(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_EQ(r.faults.crashes, 2u);
  EXPECT_EQ(r.faults.journal_replays, 2u);
  EXPECT_EQ(r.faults.torn_tail_truncations, 2u);
  ASSERT_NE(r.ledger, nullptr);
  const auto report = NamespaceInvariantChecker::check(trace.tree, *r.ledger);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

cluster::ReplayOptions async_crash_options() {
  cluster::ReplayOptions opt = small_options();
  opt.faults.seed = 90;
  opt.faults.crash_prob = 0.10;
  opt.faults.crash_recovery = sim::millis(150);
  opt.recovery.commit_mode = recovery::CommitMode::kAsync;
  opt.recovery.commit_window = sim::millis(2);
  opt.recovery.commit_batch = 64;
  return opt;
}

TEST(RecoveryReplay, AsyncCommitCrashesHoldInvariantsAndReportLosses) {
  const auto trace = small_trace();
  const auto opt = async_crash_options();
  cluster::StaticBalancer balancer(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_GT(r.faults.crashes, 0u);
  EXPECT_GT(r.faults.group_commits, 0u);
  EXPECT_GT(r.faults.group_commit_records, 0u);
  // This schedule crashes into non-empty commit buffers: losses happen,
  // and every one is reported rather than silent (I6/I8 below).
  EXPECT_GT(r.faults.acked_lost_ops + r.faults.unacked_lost_ops, 0u);

  ASSERT_NE(r.ledger, nullptr);
  EXPECT_TRUE(r.ledger->async_commit);
  EXPECT_EQ(r.ledger->commit_window, opt.recovery.commit_window);
  const auto report = NamespaceInvariantChecker::check(trace.tree, *r.ledger);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // Global accounting closes: every acked op is durable or lost, and the
  // per-record loss count upper-bounds the per-op one (a retried op can
  // lose one buffered copy yet survive through another journal).
  const auto audit = recovery::audit_durability(*r.ledger);
  EXPECT_EQ(audit.acked_durable + audit.acked_lost,
            r.ledger->acked_mutations.size());
  EXPECT_LE(audit.acked_lost, r.faults.acked_lost_ops);
}

TEST(RecoveryReplay, AsyncCommitModelIsDeterministic) {
  const auto trace = small_trace();
  const auto opt = async_crash_options();
  cluster::StaticBalancer a(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto ra = cluster::replay_trace(trace, opt, a);
  const auto rb = cluster::replay_trace(trace, opt, b);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.faults.group_commits, rb.faults.group_commits);
  EXPECT_EQ(ra.faults.group_commit_records, rb.faults.group_commit_records);
  EXPECT_EQ(ra.faults.acked_lost_ops, rb.faults.acked_lost_ops);
  EXPECT_EQ(ra.faults.unacked_lost_ops, rb.faults.unacked_lost_ops);
  EXPECT_EQ(ra.faults.max_commit_lag, rb.faults.max_commit_lag);
}

TEST(RecoveryReplay, StaleEpochRequestsAreFencedAndRerouted) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  // Stragglers stretch the window between planning a request and its
  // arrival, so live migrations race ahead of in-flight requests.
  opt.faults.seed = 7;
  opt.faults.straggler_prob = 0.4;
  opt.faults.straggler_slow = 5.0;
  opt.faults.straggler_duration = sim::millis(150);
  auto balancer = heuristic_origami();
  const auto r = cluster::replay_trace(trace, opt, balancer);

  EXPECT_GT(r.faults.committed_migrations, 0u);
  EXPECT_GT(r.faults.fenced_rejections, 0u);
  // Fenced requests are re-routed, not failed: the run still completes.
  EXPECT_EQ(r.completed_ops + r.faults.failed_ops, 40'000u);
  ASSERT_NE(r.ledger, nullptr);
  const auto report = NamespaceInvariantChecker::check(trace.tree, *r.ledger);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ----------------------------------------------------- live-mode recovery --

/// Activity-share benefit model, trained in-test (the live balancer takes a
/// GbdtModel, not a raw predictor).
std::shared_ptr<ml::GbdtModel> live_benefit_model() {
  ml::Dataset data(core::feature_name_vector());
  common::Xoshiro256 rng(5);
  std::vector<float> row(core::kFeatureCount);
  for (int i = 0; i < 1'500; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.uniform_double());
    data.add_row(row, row[3] + row[4]);
  }
  ml::GbdtParams params;
  params.rounds = 30;
  return std::make_shared<ml::GbdtModel>(ml::GbdtModel::train(data, params));
}

TEST(LiveRecovery, TwoPhaseAbortRollsBackAndPairsPhases) {
  wl::TraceRwConfig cfg;
  cfg.ops = 40'000;
  cfg.projects = 6;
  cfg.modules_per_project = 4;
  cfg.sources_per_module = 10;
  cfg.headers_shared = 60;
  cfg.seed = 31;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;
  fs::OrigamiFs fsys(fopt);

  const auto model = live_benefit_model();
  std::uint64_t aborts_seen = 0;
  std::uint64_t commits_seen = 0;

  fs::LiveReplayOptions opt;
  opt.epoch_ops = 8'000;
  // Arm the fault layer (journals, two-phase accounting) without letting a
  // crash interfere: the only scheduled window opens hours past the ~7s
  // virtual makespan, in a sampling epoch that never materialises.
  opt.faults.scheduled.push_back(
      {0, sim::seconds(10'000), sim::seconds(10'001), fault::FaultKind::kCrash,
       1.0});
  opt.on_epoch = [&](fs::OrigamiFs& f,
                     fs::LiveFaultContext& ctx) -> std::uint64_t {
    core::LiveOrigamiBalancer::Params p;
    p.min_subtree_ops = 16;
    p.min_predicted_benefit = 0.0;
    // Sabotage: the first move's destination "dies" right after PREPARE,
    // forcing the commit check to roll the subtree back to its source.
    auto doomed = std::make_shared<std::uint32_t>(UINT32_MAX);
    p.shard_down = [doomed, &ctx](std::uint32_t s) {
      return s == *doomed || ctx.shard_down(s);
    };
    p.on_phase = [&, doomed](core::MigrationPhase ph,
                             const core::LiveOrigamiBalancer::Move& m) {
      if (ph == core::MigrationPhase::kPrepare) {
        ctx.record_prepare(m.subtree, m.from, m.to);
        if (*doomed == UINT32_MAX) *doomed = m.to;
      } else if (ph == core::MigrationPhase::kCommit) {
        ++commits_seen;
        ctx.record_commit(m.subtree, m.from, m.to);
      } else {
        ++aborts_seen;
        ctx.record_abort(m.subtree, m.from, m.to);
        // The rollback already ran: the subtree is home again.
        EXPECT_EQ(f.dir_shard(m.subtree), m.from);
      }
    };
    core::LiveOrigamiBalancer balancer(model, p);
    return balancer.rebalance_epoch(f).size();
  };

  const auto stats = fs::replay_on_live(trace, fsys, opt);
  EXPECT_GT(stats.epochs, 2u);
  EXPECT_GT(stats.faults.prepared_migrations, 0u);
  EXPECT_GT(stats.faults.aborted_migrations, 0u);
  // Every PREPARE resolves to exactly one COMMIT or ABORT.
  EXPECT_EQ(
      stats.faults.prepared_migrations,
      stats.faults.committed_migrations + stats.faults.aborted_migrations);
  EXPECT_EQ(stats.faults.aborted_migrations, aborts_seen);
  EXPECT_EQ(stats.faults.committed_migrations, commits_seen);
  EXPECT_GT(stats.faults.journal_records, 0u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(LiveRecovery, AsyncCommitGroupCommitsOnTheVirtualClock) {
  wl::TraceRwConfig cfg;
  cfg.ops = 40'000;
  cfg.seed = 23;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;
  fs::OrigamiFs fsys(fopt);

  fs::LiveReplayOptions opt;
  // One crash window on the virtual clock, landing mid-trace.
  opt.faults.scheduled.push_back(
      {1, sim::seconds(2), sim::millis(2'500), fault::FaultKind::kCrash, 1.0});
  opt.recovery.commit_mode = recovery::CommitMode::kAsync;
  opt.recovery.commit_window = sim::micros(500);  // virtual-clock age trigger
  opt.recovery.commit_batch = 16;

  const auto stats = fs::replay_on_live(trace, fsys, opt);
  EXPECT_EQ(stats.faults.crashes, 1u);
  EXPECT_GT(stats.faults.journal_records, 0u);
  EXPECT_GT(stats.faults.group_commits, 0u);
  EXPECT_GT(stats.faults.group_commit_records, 0u);
  // Acked mutations flushed by count or age; only the crash loses records,
  // and never more than one batch's worth from the crashed shard.
  EXPECT_LE(stats.faults.acked_lost_ops + stats.faults.unacked_lost_ops,
            static_cast<std::uint64_t>(opt.recovery.commit_batch));
}

TEST(RecoveryReplay, RecoveryModelIsDeterministic) {
  const auto trace = small_trace();
  cluster::ReplayOptions opt = small_options();
  opt.faults.seed = 90;
  opt.faults.crash_prob = 0.10;
  opt.faults.crash_recovery = sim::millis(150);
  cluster::StaticBalancer a(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer b(cluster::StaticBalancer::Kind::kCoarseHash);
  const auto ra = cluster::replay_trace(trace, opt, a);
  const auto rb = cluster::replay_trace(trace, opt, b);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.faults.journal_records, rb.faults.journal_records);
  EXPECT_EQ(ra.faults.journal_replayed_records,
            rb.faults.journal_replayed_records);
  EXPECT_EQ(ra.faults.fenced_rejections, rb.faults.fenced_rejections);
  EXPECT_EQ(ra.faults.recovery_queue_time, rb.faults.recovery_queue_time);
}

}  // namespace
}  // namespace origami
