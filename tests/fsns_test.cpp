// Tests for the namespace substrate: op taxonomy and the directory tree.
#include <gtest/gtest.h>

#include <set>
#include <string_view>
#include <vector>

#include "origami/fsns/dir_tree.hpp"
#include "origami/fsns/types.hpp"

namespace origami::fsns {
namespace {

// -------------------------------------------------------------- Taxonomy --

TEST(OpTypes, ClassificationMatchesPaper) {
  // Eq. 2's three categories: lsdir / ns-mutation / other.
  EXPECT_EQ(classify(OpType::kReaddir), OpClass::kLsdir);
  for (OpType op : {OpType::kCreate, OpType::kMkdir, OpType::kUnlink,
                    OpType::kRmdir, OpType::kRename}) {
    EXPECT_EQ(classify(op), OpClass::kNsMutation) << to_string(op);
  }
  for (OpType op : {OpType::kStat, OpType::kOpen, OpType::kSetattr}) {
    EXPECT_EQ(classify(op), OpClass::kOther) << to_string(op);
  }
}

TEST(OpTypes, ReadWriteSplitMatchesTable1) {
  // Table 1: reads = open/stat-like; writes = create/mkdir-like.
  EXPECT_FALSE(is_write(OpType::kStat));
  EXPECT_FALSE(is_write(OpType::kOpen));
  EXPECT_FALSE(is_write(OpType::kReaddir));
  EXPECT_TRUE(is_write(OpType::kCreate));
  EXPECT_TRUE(is_write(OpType::kMkdir));
  EXPECT_TRUE(is_write(OpType::kUnlink));
  EXPECT_TRUE(is_write(OpType::kRmdir));
  EXPECT_TRUE(is_write(OpType::kRename));
  EXPECT_TRUE(is_write(OpType::kSetattr));
}

TEST(OpTypes, NamesAreUnique) {
  std::set<std::string_view> names;
  for (int i = 0; i < kOpTypeCount; ++i) {
    names.insert(to_string(static_cast<OpType>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kOpTypeCount));
}

// --------------------------------------------------------------- DirTree --

class DirTreeFixture : public ::testing::Test {
 protected:
  // /
  // ├── usr/
  // │   ├── bin/
  // │   │   └── ls        (file)
  // │   └── lib/
  // │       ├── libc.so   (file)
  // │       └── libm.so   (file)
  // └── home/
  //     └── alice/
  //         └── notes.txt (file)
  void SetUp() override {
    usr = tree.add_dir(kRootNode, "usr");
    bin = tree.add_dir(usr, "bin");
    lib = tree.add_dir(usr, "lib");
    ls = tree.add_file(bin, "ls");
    libc = tree.add_file(lib, "libc.so");
    libm = tree.add_file(lib, "libm.so");
    home = tree.add_dir(kRootNode, "home");
    alice = tree.add_dir(home, "alice");
    notes = tree.add_file(alice, "notes.txt");
    tree.finalize();
  }

  DirTree tree;
  NodeId usr{}, bin{}, lib{}, ls{}, libc{}, libm{}, home{}, alice{}, notes{};
};

TEST_F(DirTreeFixture, CountsAndTypes) {
  EXPECT_EQ(tree.size(), 10u);
  EXPECT_EQ(tree.dir_count(), 6u);
  EXPECT_EQ(tree.file_count(), 4u);
  EXPECT_TRUE(tree.is_dir(usr));
  EXPECT_FALSE(tree.is_dir(ls));
}

TEST_F(DirTreeFixture, DepthsAndParents) {
  EXPECT_EQ(tree.depth(kRootNode), 0u);
  EXPECT_EQ(tree.depth(usr), 1u);
  EXPECT_EQ(tree.depth(bin), 2u);
  EXPECT_EQ(tree.depth(ls), 3u);
  EXPECT_EQ(tree.parent(ls), bin);
  EXPECT_EQ(tree.parent(usr), kRootNode);
}

TEST_F(DirTreeFixture, FullPaths) {
  EXPECT_EQ(tree.full_path(kRootNode), "/");
  EXPECT_EQ(tree.full_path(usr), "/usr");
  EXPECT_EQ(tree.full_path(ls), "/usr/bin/ls");
  EXPECT_EQ(tree.full_path(notes), "/home/alice/notes.txt");
}

TEST_F(DirTreeFixture, AncestorsRootFirst) {
  const auto chain = tree.ancestors(ls);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0], kRootNode);
  EXPECT_EQ(chain[1], usr);
  EXPECT_EQ(chain[2], bin);
  EXPECT_EQ(chain[3], ls);
  EXPECT_EQ(tree.ancestors(kRootNode).size(), 1u);
}

TEST_F(DirTreeFixture, ChildCounters) {
  EXPECT_EQ(tree.node(usr).sub_dirs, 2u);
  EXPECT_EQ(tree.node(usr).sub_files, 0u);
  EXPECT_EQ(tree.node(lib).sub_files, 2u);
  EXPECT_EQ(tree.node(kRootNode).sub_dirs, 2u);
}

TEST_F(DirTreeFixture, SubtreeSizesAfterFinalize) {
  EXPECT_EQ(tree.node(kRootNode).subtree_nodes, 10u);
  EXPECT_EQ(tree.node(usr).subtree_nodes, 6u);  // usr,bin,lib,ls,libc,libm
  EXPECT_EQ(tree.node(lib).subtree_nodes, 3u);
  EXPECT_EQ(tree.node(ls).subtree_nodes, 1u);
}

TEST_F(DirTreeFixture, VisitSubtreeIsPreorderAndComplete) {
  std::vector<NodeId> visited;
  tree.visit_subtree(usr, [&](NodeId id) { visited.push_back(id); });
  ASSERT_EQ(visited.size(), 6u);
  EXPECT_EQ(visited[0], usr);
  // Every visited node is within the subtree.
  for (NodeId id : visited) EXPECT_TRUE(tree.in_subtree(id, usr));
}

TEST_F(DirTreeFixture, InSubtree) {
  EXPECT_TRUE(tree.in_subtree(ls, usr));
  EXPECT_TRUE(tree.in_subtree(usr, usr));
  EXPECT_TRUE(tree.in_subtree(notes, kRootNode));
  EXPECT_FALSE(tree.in_subtree(notes, usr));
  EXPECT_FALSE(tree.in_subtree(usr, home));
}

TEST_F(DirTreeFixture, DirectoriesList) {
  const auto dirs = tree.directories();
  EXPECT_EQ(dirs.size(), 6u);
  EXPECT_EQ(dirs.front(), kRootNode);
  for (NodeId d : dirs) EXPECT_TRUE(tree.is_dir(d));
}

TEST(DirTree, RootOnly) {
  DirTree tree;
  tree.finalize();
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.full_path(kRootNode), "/");
  EXPECT_EQ(tree.node(kRootNode).subtree_nodes, 1u);
}

TEST(DirTree, DeepChain) {
  DirTree tree;
  NodeId cur = kRootNode;
  for (int i = 0; i < 100; ++i) cur = tree.add_dir(cur, "d" + std::to_string(i));
  tree.finalize();
  EXPECT_EQ(tree.depth(cur), 100u);
  EXPECT_EQ(tree.ancestors(cur).size(), 101u);
  EXPECT_EQ(tree.node(kRootNode).subtree_nodes, 101u);
}

}  // namespace
}  // namespace origami::fsns
