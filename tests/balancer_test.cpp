// Tests for subtree aggregation, Table-1 feature extraction, the rebalance
// trigger, and the online balancing policies (Origami / ML-tree).
#include <gtest/gtest.h>

#include "origami/core/balancers.hpp"
#include "origami/core/features.hpp"
#include "origami/core/meta_opt.hpp"
#include "origami/core/subtree.hpp"
#include "origami/ml/gbdt.hpp"

namespace origami::core {
namespace {

using cluster::DirEpochStats;
using cluster::EpochSnapshot;
using fsns::NodeId;

struct Fixture {
  fsns::DirTree tree;
  NodeId a{}, b{}, a1{}, a2{};
  std::vector<NodeId> a1_files, a2_files, b_files;

  Fixture() {
    a = tree.add_dir(fsns::kRootNode, "a");
    b = tree.add_dir(fsns::kRootNode, "b");
    a1 = tree.add_dir(a, "a1");
    a2 = tree.add_dir(a, "a2");
    for (int i = 0; i < 5; ++i) {
      a1_files.push_back(tree.add_file(a1, "f" + std::to_string(i)));
      a2_files.push_back(tree.add_file(a2, "g" + std::to_string(i)));
      b_files.push_back(tree.add_file(b, "h" + std::to_string(i)));
    }
    tree.finalize();
  }

  [[nodiscard]] std::vector<DirEpochStats> stats() const {
    std::vector<DirEpochStats> s(tree.size());
    s[a1] = {100, 20, 3, 0, sim::millis(120)};
    s[a2] = {10, 5, 0, 1, sim::millis(15)};
    s[a] = {4, 0, 1, 0, sim::millis(4)};
    s[b] = {50, 50, 0, 0, sim::millis(100)};
    return s;
  }
};

// ------------------------------------------------------------ SubtreeView --

TEST(SubtreeView, AggregatesBottomUp) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  const SubtreeView view = SubtreeView::build(fx.tree, fx.stats(), map);
  EXPECT_EQ(view.reads(fx.a1), 100u);
  EXPECT_EQ(view.writes(fx.a1), 20u);
  EXPECT_EQ(view.reads(fx.a), 114u);  // a + a1 + a2
  EXPECT_EQ(view.writes(fx.a), 25u);
  EXPECT_EQ(view.rct(fx.a), sim::millis(139));
  EXPECT_EQ(view.ops(fx.b), 100u);
  EXPECT_EQ(view.total_ops(), 239u);
  EXPECT_EQ(view.lsdir_self(fx.a), 1u);
  EXPECT_EQ(view.nsm_self(fx.a2), 1u);
}

TEST(SubtreeView, StaticShapeFromTree) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  const SubtreeView view = SubtreeView::build(fx.tree, fx.stats(), map);
  EXPECT_EQ(view.sub_files(fx.a1), 5u);
  EXPECT_EQ(view.sub_files(fx.a), 10u);
  EXPECT_EQ(view.sub_dirs(fx.a), 2u);
  EXPECT_EQ(view.sub_dirs(fsns::kRootNode), 4u);  // a, b, a1, a2
  EXPECT_EQ(view.sub_files(fsns::kRootNode), 15u);
}

TEST(SubtreeView, UniformOwnerTracksPartition) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  map.set_dir_owner(fx.a1, 1);
  const SubtreeView view = SubtreeView::build(fx.tree, fx.stats(), map);
  EXPECT_EQ(view.uniform_owner(fx.a1), 1u);
  EXPECT_EQ(view.uniform_owner(fx.a2), 0u);
  EXPECT_EQ(view.uniform_owner(fx.a), cost::kInvalidMds);  // mixed
  EXPECT_EQ(view.uniform_owner(fx.b), 0u);
}

TEST(SubtreeView, CandidatesRankedByRct) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  const SubtreeView view = SubtreeView::build(fx.tree, fx.stats(), map);
  const auto cands = view.candidates(10, 1);
  ASSERT_GE(cands.size(), 3u);
  EXPECT_EQ(cands[0], fx.a);   // 139ms subtree
  EXPECT_EQ(cands[1], fx.a1);  // 120ms
  EXPECT_EQ(cands[2], fx.b);   // 100ms
  // min_ops filter.
  const auto heavy = view.candidates(10, 120);
  for (NodeId c : heavy) EXPECT_GE(view.ops(c), 120u);
}

TEST(SubtreeView, ApplyMigrationUpdatesUniformity) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  SubtreeView view = SubtreeView::build(fx.tree, fx.stats(), map);
  view.apply_migration(fx.tree, fx.a1, 1);
  EXPECT_EQ(view.uniform_owner(fx.a1), 1u);
  EXPECT_EQ(view.uniform_owner(fx.a), cost::kInvalidMds);
  EXPECT_EQ(view.uniform_owner(fsns::kRootNode), cost::kInvalidMds);
  EXPECT_EQ(view.uniform_owner(fx.b), 0u);  // untouched sibling
}

// ------------------------------------------------------- FeatureExtractor --

TEST(Features, SchemaMatchesTable1) {
  const auto names = feature_name_vector();
  ASSERT_EQ(names.size(), kFeatureCount);
  EXPECT_EQ(names[0], "depth");
  EXPECT_EQ(names[1], "sub_files");
  EXPECT_EQ(names[3], "reads");
  EXPECT_EQ(names[6], "dir_file_ratio");
}

TEST(Features, NormalisationRanges) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  const SubtreeView view = SubtreeView::build(fx.tree, fx.stats(), map);
  const FeatureExtractor extractor(fx.tree, view);
  for (NodeId d : fx.tree.directories()) {
    const auto f = extractor.extract(d);
    // Structure features normalised by max -> [0, 1].
    EXPECT_GE(f[0], 0.f);
    EXPECT_LE(f[0], 1.f);
    EXPECT_LE(f[1], 1.f);
    EXPECT_LE(f[2], 1.f);
    // History normalised by total access -> [0, 1].
    EXPECT_LE(f[3], 1.f);
    EXPECT_LE(f[4], 1.f);
    // rw ratio in [0, 1].
    EXPECT_GE(f[5], 0.f);
    EXPECT_LE(f[5], 1.f);
  }
}

TEST(Features, ValuesReflectStats) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  const SubtreeView view = SubtreeView::build(fx.tree, fx.stats(), map);
  const FeatureExtractor extractor(fx.tree, view);
  const auto fa1 = extractor.extract(fx.a1);
  const auto fb = extractor.extract(fx.b);
  EXPECT_GT(fa1[3], fb[3]);              // a1 has more subtree reads
  EXPECT_GT(fb[5], fa1[5]);              // b is more write-heavy (50/100)
  EXPECT_FLOAT_EQ(fa1[0], 2.0f / 2.0f);  // depth 2, max depth 2
}

// ---------------------------------------------------------------- trigger --

EpochSnapshot snapshot_with_busy(std::vector<sim::SimTime> busy,
                                 std::uint64_t ops_each = 100) {
  EpochSnapshot snap;
  for (sim::SimTime b : busy) {
    mds::MdsEpochCounters c;
    c.busy = b;
    c.ops_executed = ops_each;
    snap.mds.push_back(c);
  }
  return snap;
}

TEST(Trigger, FiresOnlyAboveThreshold) {
  RebalanceTrigger trigger{0.2};
  EXPECT_FALSE(trigger.should_rebalance(
      snapshot_with_busy({1000, 1000, 1000, 1000, 1000})));
  EXPECT_TRUE(trigger.should_rebalance(
      snapshot_with_busy({5000, 100, 100, 100, 100})));
}

TEST(Trigger, SilentWhenNoTraffic) {
  RebalanceTrigger trigger{0.0};
  EXPECT_FALSE(
      trigger.should_rebalance(snapshot_with_busy({5000, 0, 0}, /*ops=*/0)));
}

// --------------------------------------------------------------- policies --

// Trains a GBDT that predicts high benefit for subtrees with many reads
// (feature 3) — a stand-in for a real label-gen model.
std::shared_ptr<ml::GbdtModel> reads_proxy_model() {
  ml::Dataset data(feature_name_vector());
  common::Xoshiro256 rng(31);
  std::vector<float> row(kFeatureCount);
  for (int i = 0; i < 2000; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.uniform_double());
    data.add_row(row, row[3]);  // benefit == read share
  }
  ml::GbdtParams params;
  params.rounds = 40;
  return std::make_shared<ml::GbdtModel>(ml::GbdtModel::train(data, params));
}

EpochSnapshot make_snapshot(const std::vector<DirEpochStats>& stats,
                            std::vector<sim::SimTime> rct_bins) {
  EpochSnapshot snap;
  snap.dir_stats = &stats;
  for (std::size_t i = 0; i < rct_bins.size(); ++i) {
    mds::MdsEpochCounters c;
    c.rct_charged = rct_bins[i];
    c.busy = rct_bins[i];
    // Executed-op counts proportional to the bins (1 op per ms of RCT),
    // plus one so the trigger sees traffic even on balanced bins.
    c.ops_executed =
        static_cast<std::uint64_t>(rct_bins[i] / sim::millis(1)) + 1;
    snap.mds.push_back(c);
  }
  return snap;
}

TEST(OrigamiBalancer, MovesPredictedBestSubtreeToColdMds) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  auto model = reads_proxy_model();
  OrigamiBalancer::Params params;
  params.min_subtree_ops = 1;
  params.min_predicted_benefit = 0.0;
  params.max_migrations_per_epoch = 1;
  OrigamiBalancer balancer(model, cost::CostModel{}, params,
                           RebalanceTrigger{0.0});

  const auto stats = fx.stats();
  const auto snap = make_snapshot(stats, {sim::millis(239), 0});
  const auto decisions = balancer.rebalance(snap, fx.tree, map);
  ASSERT_EQ(decisions.size(), 1u);
  // The read-share proxy ranks /a highest (subtree reads 114/239).
  EXPECT_EQ(decisions[0].subtree, fx.a);
  EXPECT_EQ(decisions[0].from, 0u);
  EXPECT_EQ(decisions[0].to, 1u);
}

TEST(OrigamiBalancer, RespectsTriggerAndMissingModel) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  const auto stats = fx.stats();
  // Balanced bins: trigger must hold it back.
  auto model = reads_proxy_model();
  OrigamiBalancer::Params params;
  params.min_subtree_ops = 1;
  OrigamiBalancer balancer(model, cost::CostModel{}, params,
                           RebalanceTrigger{0.5});
  const auto snap = make_snapshot(stats, {sim::millis(100), sim::millis(100)});
  EXPECT_TRUE(balancer.rebalance(snap, fx.tree, map).empty());

  OrigamiBalancer no_model(std::shared_ptr<const ml::GbdtModel>{},
                           cost::CostModel{}, params, RebalanceTrigger{0.0});
  const auto hot = make_snapshot(stats, {sim::millis(239), 0});
  EXPECT_TRUE(no_model.rebalance(hot, fx.tree, map).empty());
}

TEST(MlTreeBalancer, EqualisesPredictedLoad) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  auto model = reads_proxy_model();
  MlTreeBalancer::Params params;
  params.min_subtree_ops = 1;
  MlTreeBalancer balancer(model, params, RebalanceTrigger{0.0});

  const auto stats = fx.stats();
  const auto snap = make_snapshot(stats, {sim::millis(239), 0});
  const auto decisions = balancer.rebalance(snap, fx.tree, map);
  ASSERT_FALSE(decisions.empty());
  for (const auto& d : decisions) {
    EXPECT_EQ(d.from, 0u);
    EXPECT_EQ(d.to, 1u);
  }
}

TEST(MlTreeBalancer, IdleWhenBalanced) {
  Fixture fx;
  mds::PartitionMap map(fx.tree, 2);
  map.migrate(fx.a, 0, 1);
  auto model = reads_proxy_model();
  MlTreeBalancer::Params params;
  params.min_subtree_ops = 1;
  params.target_spread = 0.5;
  MlTreeBalancer balancer(model, params, RebalanceTrigger{0.0});
  const auto stats = fx.stats();
  const auto snap = make_snapshot(stats, {sim::millis(100), sim::millis(100)});
  EXPECT_TRUE(balancer.rebalance(snap, fx.tree, map).empty());
}

TEST(StaticBalancer, NamesAndPartitioning) {
  Fixture fx;
  cluster::StaticBalancer single(cluster::StaticBalancer::Kind::kSingle);
  cluster::StaticBalancer coarse(cluster::StaticBalancer::Kind::kCoarseHash);
  cluster::StaticBalancer fine(cluster::StaticBalancer::Kind::kFineHash);
  EXPECT_EQ(single.name(), "single");
  EXPECT_EQ(coarse.name(), "c-hash");
  EXPECT_EQ(fine.name(), "f-hash");
  mds::PartitionMap map(fx.tree, 4);
  fine.prepare(fx.tree, map);
  std::uint64_t total = 0;
  for (auto c : map.inode_counts()) total += c;
  EXPECT_EQ(total, fx.tree.size());
}

}  // namespace
}  // namespace origami::core
