// End-to-end integration tests: the full Origami workflow (label
// generation -> offline training -> online ML-driven balancing) against
// the baselines, on scaled-down versions of the paper's setup.
#include <gtest/gtest.h>

#include "origami/cluster/replay.hpp"
#include "origami/core/balancers.hpp"
#include "origami/core/pipeline.hpp"
#include "origami/wl/generators.hpp"

namespace origami {
namespace {

using cluster::ReplayOptions;
using cluster::RunResult;
using cluster::StaticBalancer;

wl::Trace small_rw(std::uint64_t ops = 90'000) {
  wl::TraceRwConfig cfg;
  cfg.ops = ops;
  cfg.projects = 8;
  cfg.modules_per_project = 5;
  cfg.sources_per_module = 12;
  cfg.headers_shared = 150;
  return wl::make_trace_rw(cfg);
}

ReplayOptions options(std::uint32_t mds = 3, std::uint32_t clients = 48) {
  ReplayOptions opt;
  opt.mds_count = mds;
  opt.clients = clients;
  opt.epoch_length = sim::millis(250);
  opt.warmup_epochs = 3;
  opt.lookahead_ops = 20'000;
  return opt;
}

core::LabelGenOptions label_options(const ReplayOptions& replay) {
  core::LabelGenOptions opt;
  opt.replay = replay;
  opt.meta_opt.min_subtree_ops = 8;
  opt.meta_opt.stop_threshold = sim::micros(500);
  opt.meta_opt.cache_depth = replay.cache_depth;
  opt.meta_opt.cache_enabled = replay.cache_enabled;
  opt.min_feature_ops = 4;
  return opt;
}

TEST(Integration, LabelGenerationProducesTrainingData) {
  const wl::Trace trace = small_rw();
  const auto labels = core::generate_labels(trace, label_options(options()));
  EXPECT_GT(labels.benefit_data.size(), 50u);
  EXPECT_GT(labels.popularity_data.size(), 50u);
  EXPECT_EQ(labels.benefit_data.num_features(), core::kFeatureCount);
  EXPECT_EQ(labels.run.completed_ops, trace.ops.size());
  // Meta-OPT must have actually migrated something during label gen.
  EXPECT_GT(labels.run.migrations, 0u);
  // Some labels must be positive (profitable migrations exist).
  bool positive = false;
  for (std::size_t i = 0; i < labels.benefit_data.size(); ++i) {
    if (labels.benefit_data.label(i) > 0) positive = true;
  }
  EXPECT_TRUE(positive);
}

TEST(Integration, TrainedModelRanksBenefitsUsefully) {
  // §4.3's iterative enrichment: pool label-gen data from two runs of the
  // workload family before training.
  auto labels = core::generate_labels(small_rw(), label_options(options()));
  wl::TraceRwConfig cfg2;
  cfg2.ops = 90'000;
  cfg2.projects = 8;
  cfg2.modules_per_project = 5;
  cfg2.sources_per_module = 12;
  cfg2.headers_shared = 150;
  cfg2.seed = 55;
  const auto labels2 =
      core::generate_labels(wl::make_trace_rw(cfg2), label_options(options()));
  labels.benefit_data.append(labels2.benefit_data);
  labels.popularity_data.append(labels2.popularity_data);

  ml::GbdtParams params;
  params.rounds = 150;
  const auto models = core::train_models(labels, params);
  ASSERT_NE(models.benefit, nullptr);
  EXPECT_GT(models.benefit->num_trees(), 0);
  // §4.3: what matters operationally is that the model puts genuinely
  // high-benefit subtrees on top — the greedy migrator discards the rest.
  EXPECT_GT(models.benefit_top_lift, 2.0);
  EXPECT_GT(models.benefit_spearman, 0.0);
  EXPECT_GT(labels.benefit_data.size(), 200u);
}

TEST(Integration, OrigamiBeatsSingleMdsAndStaysLocal) {
  const wl::Trace trace = small_rw();
  const ReplayOptions opt = options();

  // Train on a differently-seeded run of the same workload family.
  wl::TraceRwConfig train_cfg;
  train_cfg.ops = 90'000;
  train_cfg.projects = 8;
  train_cfg.modules_per_project = 5;
  train_cfg.sources_per_module = 12;
  train_cfg.headers_shared = 150;
  train_cfg.seed = 77;
  const wl::Trace train_trace = wl::make_trace_rw(train_cfg);
  ml::GbdtParams gbdt;
  gbdt.rounds = 120;
  const auto models =
      core::train_from_trace(train_trace, label_options(opt), gbdt);

  // Single-MDS baseline.
  ReplayOptions single_opt = opt;
  single_opt.mds_count = 1;
  StaticBalancer single(StaticBalancer::Kind::kSingle);
  const RunResult r_single = replay_trace(trace, single_opt, single);

  // Origami on 3 MDSs.
  core::OrigamiBalancer::Params ob;
  ob.min_subtree_ops = 8;
  core::OrigamiBalancer origami(models.benefit, cost::CostModel{opt.cost_params},
                                ob, core::RebalanceTrigger{0.05});
  const RunResult r_origami = replay_trace(trace, opt, origami);

  EXPECT_GT(r_origami.steady_throughput_ops, r_single.steady_throughput_ops);
  EXPECT_GT(r_origami.migrations, 0u);
  // Locality: forwarding stays modest thanks to benefit-aware migration +
  // the near-root cache (§5.4: ~1.04 RPC/request with cache).
  EXPECT_LT(r_origami.rpc_per_request, 1.8);
}

TEST(Integration, MetaOptOracleImprovesOverNoBalancing) {
  const wl::Trace trace = small_rw();
  const ReplayOptions opt = options();

  // "no balancing" on the same 3-MDS cluster: everything stays on MDS-0.
  StaticBalancer none(StaticBalancer::Kind::kSingle);
  const RunResult r_none = replay_trace(trace, opt, none);

  core::MetaOptParams mp;
  mp.min_subtree_ops = 8;
  mp.stop_threshold = sim::micros(500);
  core::MetaOptOracleBalancer oracle(cost::CostModel{opt.cost_params}, mp,
                                     core::RebalanceTrigger{0.05});
  const RunResult r_oracle = replay_trace(trace, opt, oracle);

  EXPECT_GT(r_oracle.migrations, 0u);
  EXPECT_GT(r_oracle.steady_throughput_ops,
            r_none.steady_throughput_ops * 1.3);
}

TEST(Integration, FullComparisonOrderingOnTraceRw) {
  // A scaled-down Fig. 5a: Origami should lead, and single-MDS trail.
  const wl::Trace trace = small_rw(80'000);
  const ReplayOptions opt = options(3, 24);

  const auto models = core::train_from_trace(small_rw(), label_options(opt),
                                             [] {
                                               ml::GbdtParams p;
                                               p.rounds = 120;
                                               return p;
                                             }());

  ReplayOptions single_opt = opt;
  single_opt.mds_count = 1;
  StaticBalancer single(StaticBalancer::Kind::kSingle);
  StaticBalancer chash(StaticBalancer::Kind::kCoarseHash);
  StaticBalancer fhash(StaticBalancer::Kind::kFineHash);
  core::OrigamiBalancer::Params ob;
  ob.min_subtree_ops = 8;
  core::OrigamiBalancer origami(models.benefit, cost::CostModel{opt.cost_params},
                                ob, core::RebalanceTrigger{0.05});

  const double t_single =
      replay_trace(trace, single_opt, single).steady_throughput_ops;
  const double t_chash = replay_trace(trace, opt, chash).steady_throughput_ops;
  const double t_fhash = replay_trace(trace, opt, fhash).steady_throughput_ops;
  const double t_origami =
      replay_trace(trace, opt, origami).steady_throughput_ops;

  // The paper's qualitative ordering (§5.2).
  EXPECT_GT(t_origami, t_chash);
  EXPECT_GT(t_origami, t_fhash);
  EXPECT_GT(t_origami, t_single);
  EXPECT_GT(t_chash, t_single);
}

TEST(Integration, KvBackedOrigamiRunMatchesUnbacked) {
  // kv_backing changes host-side work only, never virtual-time results.
  const wl::Trace trace = small_rw(20'000);
  ReplayOptions opt = options();
  ReplayOptions opt_kv = opt;
  opt_kv.kv_backing = true;
  StaticBalancer b1(StaticBalancer::Kind::kCoarseHash);
  StaticBalancer b2(StaticBalancer::Kind::kCoarseHash);
  const RunResult a = replay_trace(trace, opt, b1);
  const RunResult b = replay_trace(trace, opt_kv, b2);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_rpcs, b.total_rpcs);
}

}  // namespace
}  // namespace origami
