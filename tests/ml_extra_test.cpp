// Tests for the ML extensions: linear (ridge) model, k-fold cross
// validation, ranking metrics, and MLP serialisation.
#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "origami/common/rng.hpp"
#include "origami/ml/gbdt.hpp"
#include "origami/ml/linear.hpp"
#include "origami/ml/metrics.hpp"
#include "origami/ml/mlp.hpp"
#include "origami/ml/validation.hpp"

namespace origami::ml {
namespace {

Dataset linear_data(std::size_t n, std::uint64_t seed, double noise = 0.0) {
  Dataset data;
  common::Xoshiro256 rng(seed);
  std::vector<float> row(3);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.uniform_double());
    data.add_row(row, static_cast<float>(2.0 * row[0] - row[1] + 0.5 +
                                         noise * rng.normal()));
  }
  return data;
}

// ------------------------------------------------------------ LinearModel --

TEST(LinearModel, RecoversExactLinearRelation) {
  const Dataset data = linear_data(500, 1);
  const LinearModel model = LinearModel::train(data);
  ASSERT_EQ(model.weights().size(), 3u);
  EXPECT_NEAR(model.weights()[0], 2.0, 0.02);
  EXPECT_NEAR(model.weights()[1], -1.0, 0.02);
  EXPECT_NEAR(model.weights()[2], 0.0, 0.02);
  EXPECT_NEAR(model.intercept(), 0.5, 0.02);
  const auto pred = model.predict_batch(data);
  EXPECT_LT(rmse(pred, data.labels()), 0.02);
}

TEST(LinearModel, NoisyDataStillCloses) {
  const Dataset data = linear_data(4000, 2, 0.1);
  const LinearModel model = LinearModel::train(data);
  const auto pred = model.predict_batch(data);
  EXPECT_GT(r2(pred, data.labels()), 0.9);
}

TEST(LinearModel, RegularisationShrinksWeights) {
  const Dataset data = linear_data(200, 3, 0.05);
  LinearModel::Params heavy;
  heavy.l2 = 1e4;
  const LinearModel shrunk = LinearModel::train(data, heavy);
  const LinearModel free = LinearModel::train(data);
  EXPECT_LT(std::abs(shrunk.weights()[0]), std::abs(free.weights()[0]));
}

TEST(LinearModel, EmptyDataset) {
  Dataset empty({"a"});
  const LinearModel model = LinearModel::train(empty);
  EXPECT_DOUBLE_EQ(model.predict(std::array<float, 1>{1.f}), 0.0);
}

// --------------------------------------------------------- cross_validate --

TEST(CrossValidate, LinearFitsLinearData) {
  const Dataset data = linear_data(600, 4, 0.05);
  const CvResult cv = cross_validate(data, 5, 7, [](const Dataset& train) {
    auto model = std::make_shared<LinearModel>(LinearModel::train(train));
    return Predictor([model](std::span<const float> x) {
      return model->predict(x);
    });
  });
  ASSERT_EQ(cv.fold_rmse.size(), 5u);
  EXPECT_NEAR(cv.mean_rmse, 0.05, 0.02);
  EXPECT_GT(cv.mean_spearman, 0.9);
  for (double r : cv.fold_rmse) EXPECT_LT(r, 0.1);
}

TEST(CrossValidate, GbdtHookWorks) {
  const Dataset data = linear_data(800, 5, 0.05);
  GbdtParams params;
  params.rounds = 60;
  const CvResult cv =
      cross_validate(data, 3, 11, [&params](const Dataset& train) {
        auto model =
            std::make_shared<GbdtModel>(GbdtModel::train(train, params));
        return Predictor([model](std::span<const float> x) {
          return model->predict(x);
        });
      });
  EXPECT_LT(cv.mean_rmse, 0.25);
}

TEST(CrossValidate, DeterministicBySeed) {
  const Dataset data = linear_data(300, 6, 0.1);
  auto trainer = [](const Dataset& train) {
    auto model = std::make_shared<LinearModel>(LinearModel::train(train));
    return Predictor([model](std::span<const float> x) {
      return model->predict(x);
    });
  };
  const CvResult a = cross_validate(data, 4, 9, trainer);
  const CvResult b = cross_validate(data, 4, 9, trainer);
  EXPECT_EQ(a.fold_rmse, b.fold_rmse);
}

TEST(CrossValidate, TooFewRowsIsEmpty) {
  Dataset tiny({"x"});
  tiny.add_row(std::array<float, 1>{1.f}, 1.f);
  const CvResult cv = cross_validate(tiny, 5, 1, [](const Dataset&) {
    return Predictor([](std::span<const float>) { return 0.0; });
  });
  EXPECT_TRUE(cv.fold_rmse.empty());
}

// --------------------------------------------------------- ranking metrics --

TEST(RankingMetrics, PerfectRankingScoresOne) {
  const std::vector<float> truth{5.f, 4.f, 3.f, 2.f, 1.f};
  const std::vector<double> pred{50, 40, 30, 20, 10};
  EXPECT_DOUBLE_EQ(ndcg_at_k(pred, truth, 3), 1.0);
  EXPECT_DOUBLE_EQ(precision_at_k(pred, truth, 3), 1.0);
}

TEST(RankingMetrics, InvertedRankingScoresLow) {
  const std::vector<float> truth{5.f, 4.f, 3.f, 2.f, 1.f};
  const std::vector<double> pred{10, 20, 30, 40, 50};
  EXPECT_LT(ndcg_at_k(pred, truth, 2), 0.6);
  EXPECT_DOUBLE_EQ(precision_at_k(pred, truth, 2), 0.0);
}

TEST(RankingMetrics, PartialOverlap) {
  const std::vector<float> truth{10.f, 9.f, 1.f, 0.f};
  const std::vector<double> pred{100, 1, 90, 2};  // places {0,2} on top
  EXPECT_DOUBLE_EQ(precision_at_k(pred, truth, 2), 0.5);
  const double g = ndcg_at_k(pred, truth, 2);
  EXPECT_GT(g, 0.5);
  EXPECT_LT(g, 1.0);
}

TEST(RankingMetrics, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(ndcg_at_k({}, {}, 3), 0.0);
  EXPECT_DOUBLE_EQ(precision_at_k({}, {}, 3), 0.0);
  const std::vector<float> zeros{0.f, 0.f};
  EXPECT_DOUBLE_EQ(ndcg_at_k({1.0, 2.0}, zeros, 2), 0.0);
}

// -------------------------------------------------------------- MLP (de)ser --

TEST(MlpSerialisation, RoundtripPredictsIdentically) {
  const Dataset data = linear_data(800, 8, 0.05);
  MlpParams params;
  params.epochs = 10;
  params.hidden = {16, 16, 8, 8};
  const MlpModel model = MlpModel::train(data, params);
  std::stringstream buf;
  model.save(buf);
  const MlpModel loaded = MlpModel::load(buf);
  EXPECT_EQ(loaded.num_layers(), model.num_layers());
  EXPECT_EQ(loaded.num_features(), model.num_features());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(loaded.predict(data.row(i)), model.predict(data.row(i)), 1e-12);
  }
}

TEST(MlpSerialisation, RejectsGarbage) {
  std::stringstream buf("not a model at all");
  const MlpModel model = MlpModel::load(buf);
  EXPECT_EQ(model.num_layers(), 0u);
}

}  // namespace
}  // namespace origami::ml
