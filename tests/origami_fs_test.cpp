// Tests for the live OrigamiFS metadata service: POSIX-flavoured semantics,
// shard routing, and subtree migration correctness.
#include <gtest/gtest.h>

#include <set>

#include "origami/common/rng.hpp"
#include "origami/fs/origami_fs.hpp"

namespace origami::fs {
namespace {

OrigamiFs::Options small_options(std::uint32_t shards = 3) {
  OrigamiFs::Options o;
  o.shards = shards;
  return o;
}

// ------------------------------------------------------------- semantics --

TEST(OrigamiFs, RootExists) {
  OrigamiFs fsys;
  auto s = fsys.stat("/");
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(s.value().ino, kRootIno);
  EXPECT_TRUE(s.value().is_dir);
}

TEST(OrigamiFs, MkdirCreateStat) {
  OrigamiFs fsys(small_options());
  ASSERT_TRUE(fsys.mkdir("/home").is_ok());
  ASSERT_TRUE(fsys.mkdir("/home/alice").is_ok());
  auto file = fsys.create("/home/alice/notes.txt");
  ASSERT_TRUE(file.is_ok());

  auto s = fsys.stat("/home/alice/notes.txt");
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(s.value().ino, file.value());
  EXPECT_FALSE(s.value().is_dir);

  auto d = fsys.stat("/home/alice");
  ASSERT_TRUE(d.is_ok());
  EXPECT_TRUE(d.value().is_dir);
}

TEST(OrigamiFs, ErrorsMatchPosixExpectations) {
  OrigamiFs fsys(small_options());
  ASSERT_TRUE(fsys.mkdir("/a").is_ok());
  ASSERT_TRUE(fsys.create("/a/f").is_ok());

  // Duplicate names.
  EXPECT_EQ(fsys.mkdir("/a").status().code(),
            common::StatusCode::kAlreadyExists);
  EXPECT_EQ(fsys.create("/a/f").status().code(),
            common::StatusCode::kAlreadyExists);
  // Missing intermediate.
  EXPECT_EQ(fsys.create("/missing/f").status().code(),
            common::StatusCode::kNotFound);
  // Descend through a file.
  EXPECT_EQ(fsys.stat("/a/f/x").status().code(), common::StatusCode::kNotFound);
  // unlink on a dir / rmdir on a file.
  EXPECT_EQ(fsys.unlink("/a").code(), common::StatusCode::kFailedPrecondition);
  EXPECT_EQ(fsys.rmdir("/a/f").code(), common::StatusCode::kFailedPrecondition);
  // rmdir on non-empty.
  EXPECT_EQ(fsys.rmdir("/a").code(), common::StatusCode::kFailedPrecondition);
  // stat of absent leaf.
  EXPECT_EQ(fsys.stat("/a/zzz").status().code(), common::StatusCode::kNotFound);
}

TEST(OrigamiFs, UnlinkAndRmdirLifecycle) {
  OrigamiFs fsys(small_options());
  ASSERT_TRUE(fsys.mkdir("/tmp").is_ok());
  ASSERT_TRUE(fsys.create("/tmp/x").is_ok());
  EXPECT_TRUE(fsys.unlink("/tmp/x").is_ok());
  EXPECT_EQ(fsys.stat("/tmp/x").status().code(), common::StatusCode::kNotFound);
  EXPECT_TRUE(fsys.rmdir("/tmp").is_ok());
  EXPECT_EQ(fsys.stat("/tmp").status().code(), common::StatusCode::kNotFound);
  // Recreating the same names must work.
  EXPECT_TRUE(fsys.mkdir("/tmp").is_ok());
  EXPECT_TRUE(fsys.create("/tmp/x").is_ok());
}

TEST(OrigamiFs, ReaddirListsAllChildren) {
  OrigamiFs fsys(small_options());
  ASSERT_TRUE(fsys.mkdir("/d").is_ok());
  std::set<std::string> expected;
  for (int i = 0; i < 20; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(fsys.create("/d/" + name).is_ok());
    expected.insert(name);
  }
  ASSERT_TRUE(fsys.mkdir("/d/sub").is_ok());
  expected.insert("sub");

  auto listing = fsys.readdir("/d");
  ASSERT_TRUE(listing.is_ok());
  std::set<std::string> got;
  for (const DirEntry& e : listing.value()) got.insert(e.name);
  EXPECT_EQ(got, expected);
  // readdir on root sees /d.
  auto root = fsys.readdir("/");
  ASSERT_TRUE(root.is_ok());
  ASSERT_EQ(root.value().size(), 1u);
  EXPECT_EQ(root.value()[0].name, "d");
  EXPECT_TRUE(root.value()[0].is_dir);
}

TEST(OrigamiFs, RenameFileAndDirectory) {
  OrigamiFs fsys(small_options());
  ASSERT_TRUE(fsys.mkdir("/src").is_ok());
  ASSERT_TRUE(fsys.mkdir("/dst").is_ok());
  ASSERT_TRUE(fsys.create("/src/file").is_ok());
  ASSERT_TRUE(fsys.mkdir("/src/dir").is_ok());
  ASSERT_TRUE(fsys.create("/src/dir/inner").is_ok());

  ASSERT_TRUE(fsys.rename("/src/file", "/dst/file2").is_ok());
  EXPECT_FALSE(fsys.stat("/src/file").is_ok());
  EXPECT_TRUE(fsys.stat("/dst/file2").is_ok());

  // Renaming a directory carries its subtree (same inode, entries follow).
  const auto before = fsys.stat("/src/dir").value().ino;
  ASSERT_TRUE(fsys.rename("/src/dir", "/dst/dir").is_ok());
  EXPECT_EQ(fsys.stat("/dst/dir").value().ino, before);
  EXPECT_TRUE(fsys.stat("/dst/dir/inner").is_ok());
  EXPECT_FALSE(fsys.stat("/src/dir/inner").is_ok());

  // Destination exists / renaming root are rejected.
  EXPECT_EQ(fsys.rename("/dst/file2", "/dst/dir").code(),
            common::StatusCode::kAlreadyExists);
  EXPECT_EQ(fsys.rename("/", "/x").code(), common::StatusCode::kInvalidArgument);
}

TEST(OrigamiFs, SetattrPersists) {
  OrigamiFs fsys(small_options());
  ASSERT_TRUE(fsys.create("/f").is_ok());
  fsns::InodeAttr attr;
  attr.mode = 0600;
  attr.size = 4096;
  ASSERT_TRUE(fsys.setattr("/f", attr).is_ok());
  auto s = fsys.stat("/f");
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(s.value().attr.mode, 0600u);
  EXPECT_EQ(s.value().attr.size, 4096u);
}

// --------------------------------------------------------------- sharding --

TEST(OrigamiFs, EverythingStartsOnShardZero) {
  OrigamiFs fsys(small_options());
  ASSERT_TRUE(fsys.mkdir("/a").is_ok());
  ASSERT_TRUE(fsys.mkdir("/a/b").is_ok());
  EXPECT_EQ(fsys.owner_of("/").value(), 0u);
  EXPECT_EQ(fsys.owner_of("/a").value(), 0u);
  EXPECT_EQ(fsys.owner_of("/a/b").value(), 0u);
  const auto stats = fsys.shard_stats();
  EXPECT_GT(stats[0].entries, 0u);
  EXPECT_EQ(stats[1].entries, 0u);
}

TEST(OrigamiFs, MigrationMovesFragmentsAndPreservesData) {
  OrigamiFs fsys(small_options());
  ASSERT_TRUE(fsys.mkdir("/proj").is_ok());
  ASSERT_TRUE(fsys.mkdir("/proj/src").is_ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fsys.create("/proj/src/f" + std::to_string(i)).is_ok());
  }
  ASSERT_TRUE(fsys.mkdir("/other").is_ok());

  auto moved = fsys.migrate_subtree("/proj", 2);
  ASSERT_TRUE(moved.is_ok());
  EXPECT_GT(moved.value(), 10u);
  EXPECT_EQ(fsys.owner_of("/proj").value(), 2u);
  EXPECT_EQ(fsys.owner_of("/proj/src").value(), 2u);
  EXPECT_EQ(fsys.owner_of("/other").value(), 0u);

  // Everything still resolves and lists correctly after the move.
  EXPECT_TRUE(fsys.stat("/proj/src/f3").is_ok());
  auto listing = fsys.readdir("/proj/src");
  ASSERT_TRUE(listing.is_ok());
  EXPECT_EQ(listing.value().size(), 10u);

  // New entries under the migrated dir land on the new shard.
  ASSERT_TRUE(fsys.create("/proj/src/fresh").is_ok());
  const auto stats = fsys.shard_stats();
  EXPECT_GT(stats[2].entries, 10u);

  // Idempotent: migrating again to the same shard moves nothing.
  EXPECT_EQ(fsys.migrate_subtree("/proj", 2).value(), 0u);
  // Bad target shard.
  EXPECT_EQ(fsys.migrate_subtree("/proj", 99).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST(OrigamiFs, RandomOpsWithMigrationsMatchReferenceModel) {
  // Property test: a shadow model of (path -> is_dir) must agree with the
  // service under random ops interleaved with random subtree migrations.
  OrigamiFs fsys(small_options(4));
  common::Xoshiro256 rng(2024);

  std::vector<std::string> dirs{""};  // "" == root prefix
  std::set<std::string> files;
  for (int step = 0; step < 3'000; ++step) {
    const double roll = rng.uniform_double();
    if (roll < 0.25) {
      const std::string& parent = dirs[rng.uniform(dirs.size())];
      const std::string path = parent + "/d" + std::to_string(step);
      ASSERT_TRUE(fsys.mkdir(path).is_ok()) << path;
      dirs.push_back(path);
    } else if (roll < 0.6) {
      const std::string& parent = dirs[rng.uniform(dirs.size())];
      const std::string path = parent + "/f" + std::to_string(step);
      ASSERT_TRUE(fsys.create(path).is_ok()) << path;
      files.insert(path);
    } else if (roll < 0.75 && !files.empty()) {
      auto it = files.begin();
      std::advance(it, static_cast<long>(rng.uniform(files.size())));
      ASSERT_TRUE(fsys.unlink(*it).is_ok()) << *it;
      files.erase(it);
    } else if (roll < 0.9) {
      const std::string& victim = dirs[rng.uniform(dirs.size())];
      if (victim.empty()) continue;  // never migrate "/" wholesale? allowed, skip
      const auto target = static_cast<std::uint32_t>(rng.uniform(4));
      ASSERT_TRUE(fsys.migrate_subtree(victim, target).is_ok()) << victim;
    } else if (!files.empty()) {
      auto it = files.begin();
      std::advance(it, static_cast<long>(rng.uniform(files.size())));
      ASSERT_TRUE(fsys.stat(*it).is_ok()) << *it;
    }
  }
  // Final audit: every live file and directory resolves.
  for (const std::string& f : files) {
    auto s = fsys.stat(f);
    ASSERT_TRUE(s.is_ok()) << f;
    EXPECT_FALSE(s.value().is_dir);
  }
  for (const std::string& d : dirs) {
    if (d.empty()) continue;
    auto s = fsys.stat(d);
    ASSERT_TRUE(s.is_ok()) << d;
    EXPECT_TRUE(s.value().is_dir);
  }
  // Entry accounting is conserved across shards.
  std::uint64_t total = 0;
  for (const auto& st : fsys.shard_stats()) total += st.entries;
  EXPECT_EQ(total, fsys.entry_count());
  EXPECT_EQ(total, files.size() + dirs.size() - 1);
}

}  // namespace
}  // namespace origami::fs

namespace origami::fs {
namespace {

TEST(OrigamiFsCheckpoint, SurvivesRestart) {
  const std::string prefix = ::testing::TempDir() + "/origami_fs_ckpt";
  {
    OrigamiFs fsys(small_options(3));
    ASSERT_TRUE(fsys.mkdir("/proj").is_ok());
    ASSERT_TRUE(fsys.mkdir("/proj/src").is_ok());
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(fsys.create("/proj/src/f" + std::to_string(i)).is_ok());
    }
    ASSERT_TRUE(fsys.migrate_subtree("/proj", 2).is_ok());
    ASSERT_TRUE(fsys.checkpoint(prefix).is_ok());
  }

  OrigamiFs revived(small_options(3));
  ASSERT_TRUE(revived.restore(prefix).is_ok());
  // Namespace intact, ownership preserved, new writes get fresh inos.
  EXPECT_TRUE(revived.stat("/proj/src/f7").is_ok());
  EXPECT_EQ(revived.readdir("/proj/src").value().size(), 25u);
  EXPECT_EQ(revived.owner_of("/proj").value(), 2u);
  const auto before = revived.entry_count();
  auto fresh = revived.create("/proj/src/after-restart");
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(revived.entry_count(), before + 1);
  // The fresh inode does not collide with any checkpointed one.
  EXPECT_NE(fresh.value(), revived.stat("/proj/src/f7").value().ino);

  // Activity bookkeeping survives too (shape, not the live counters).
  bool found_src = false;
  for (const auto& a : revived.collect_activity(false)) {
    if (a.sub_files >= 25) found_src = true;
  }
  EXPECT_TRUE(found_src);

  for (int i = 0; i < 3; ++i) {
    std::remove((prefix + ".shard" + std::to_string(i)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());
}

TEST(OrigamiFsCheckpoint, ShardCountMismatchRejected) {
  const std::string prefix = ::testing::TempDir() + "/origami_fs_ckpt2";
  {
    OrigamiFs fsys(small_options(2));
    ASSERT_TRUE(fsys.mkdir("/d").is_ok());
    ASSERT_TRUE(fsys.checkpoint(prefix).is_ok());
  }
  OrigamiFs wrong(small_options(4));
  EXPECT_EQ(wrong.restore(prefix).code(), common::StatusCode::kCorruption);
  for (int i = 0; i < 2; ++i) {
    std::remove((prefix + ".shard" + std::to_string(i)).c_str());
  }
  std::remove((prefix + ".manifest").c_str());
}

}  // namespace
}  // namespace origami::fs
