// Regression and contention coverage for the concurrency primitives that
// carry the live serving plane: MpmcQueue / BoundedMpmcQueue (the request
// lanes) and ThreadPool (the analysis plane). The first two suites encode
// the silent-drop fix — a push racing close() must be *rejected*, never
// dropped — and the ThreadPool suite encodes the exception-loss fix (a
// throwing task used to escape worker_loop and std::terminate the
// process). These tests are also the TSan targets for the primitives: the
// sweep tests run real producer/consumer contention with mid-stream
// close(), which is exactly the shutdown interleaving the serving plane
// exercises on every finalize.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "origami/common/mpmc_queue.hpp"
#include "origami/common/thread_pool.hpp"

namespace {

using origami::common::BoundedMpmcQueue;
using origami::common::MpmcQueue;
using origami::common::ThreadPool;

// ---------------------------------------------------------------------------
// MpmcQueue: close() semantics and the silent-drop regression.
// ---------------------------------------------------------------------------

TEST(MpmcQueue, PushAfterCloseIsRejectedNotDropped) {
  MpmcQueue<int> q;
  EXPECT_TRUE(q.push(1));
  q.close();
  // Pre-fix behaviour: push returned void and the item vanished. Now the
  // producer is told its item never entered the queue.
  EXPECT_FALSE(q.push(2));
  auto got = q.pop();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1);
  EXPECT_EQ(q.pop(), std::nullopt);  // drained + closed
}

TEST(MpmcQueue, CloseRaceAccountsForEveryItem) {
  // Producers race a mid-stream close(). The accounting invariant the
  // serving plane relies on: every item is either consumed or its push
  // returned false — accepted == consumed, with no third outcome. On the
  // pre-fix queue the producers cannot observe rejection, so items pushed
  // after close() are silently lost and this bookkeeping is impossible.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 4000;
  MpmcQueue<int> q;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> consumed{0};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.push(i)) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> consumers;
  consumers.reserve(2);
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&q, &consumed] {
      while (q.pop().has_value()) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Close somewhere in the middle of the stream so some pushes are
  // accepted and (almost certainly) some are rejected.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  q.close();
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_LE(accepted.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

TEST(MpmcQueue, ContendedPopTryPopCloseSweep) {
  // TSan sweep: blocking pops, spinning try_pops, and close() all contend
  // on the same queue. Every accepted item must be consumed exactly once.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 3000;
  MpmcQueue<std::uint64_t> q;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<std::uint64_t> pushed_sum{0};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(p) * kPerProducer + i + 1;
        if (q.push(v)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          pushed_sum.fetch_add(v, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int c = 0; c < 2; ++c) {  // blocking consumers
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        consumed_sum.fetch_add(*v, std::memory_order_relaxed);
      }
    });
  }
  threads.emplace_back([&] {  // polling consumer
    while (true) {
      if (auto v = q.try_pop()) {
        consumed_sum.fetch_add(*v, std::memory_order_relaxed);
      } else if (producers_done.load(std::memory_order_acquire) &&
                 q.closed()) {
        break;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  q.close();
  for (int t = 0; t < kProducers; ++t) threads[t].join();
  producers_done.store(true, std::memory_order_release);
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  // try_pop can race the blocking consumers for the last items, but the
  // sums must balance: nothing lost, nothing duplicated.
  EXPECT_EQ(consumed_sum.load(), pushed_sum.load());
  EXPECT_GT(accepted.load(), 0u);
}

// ---------------------------------------------------------------------------
// BoundedMpmcQueue: backpressure + close() semantics of the request lanes.
// ---------------------------------------------------------------------------

TEST(BoundedMpmcQueue, RejectsPushAfterCloseAndDrainsRemainder) {
  BoundedMpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(10));
  EXPECT_TRUE(q.push(11));
  q.close();
  EXPECT_FALSE(q.push(12));
  EXPECT_FALSE(q.try_push(13));
  EXPECT_EQ(q.pop(), std::optional<int>(10));
  EXPECT_EQ(q.pop(), std::optional<int>(11));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedMpmcQueue, ZeroCapacityIsClampedToOne) {
  BoundedMpmcQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));  // full at the clamped capacity
}

TEST(BoundedMpmcQueue, BackpressureBlocksProducerUntilConsumerMakesRoom) {
  BoundedMpmcQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_FALSE(q.try_push(3));  // full: lane applies backpressure

  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    const bool ok = q.push(3);  // blocks until the pop below
    EXPECT_TRUE(ok);
    third_accepted.store(true, std::memory_order_release);
  });
  // The producer must be stalled, not failed: give it a moment, then
  // confirm the push has not completed while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(third_accepted.load(std::memory_order_acquire));

  EXPECT_EQ(q.pop(), std::optional<int>(1));  // makes room
  producer.join();
  EXPECT_TRUE(third_accepted.load());
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::optional<int>(3));
}

TEST(BoundedMpmcQueue, CloseWakesBlockedProducerWithRejection) {
  BoundedMpmcQueue<int> q(1);
  EXPECT_TRUE(q.push(1));  // lane now full
  std::atomic<int> result{-1};
  std::thread producer([&] {
    result.store(q.push(2) ? 1 : 0, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(result.load(std::memory_order_acquire), -1);  // still blocked
  q.close();  // must wake the producer and reject, not hang or drop
  producer.join();
  EXPECT_EQ(result.load(), 0);
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedMpmcQueue, ContendedSweepHonoursCapacityAndAccounting) {
  // TSan sweep at the serving-plane shape: several producers pushing
  // through a shallow lane, consumers draining, close() mid-stream. The
  // capacity invariant is sampled from a monitor thread while the
  // accounting invariant (accepted == consumed) is checked at the end.
  constexpr std::size_t kCapacity = 8;
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 2000;
  BoundedMpmcQueue<int> q(kCapacity);
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> consumed{0};
  std::atomic<bool> stop_monitor{false};
  std::atomic<bool> capacity_violated{false};

  std::thread monitor([&] {
    while (!stop_monitor.load(std::memory_order_acquire)) {
      if (q.size() > kCapacity) {
        capacity_violated.store(true, std::memory_order_release);
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.push(i)) accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (q.pop().has_value()) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  q.close();
  for (auto& t : threads) t.join();
  stop_monitor.store(true, std::memory_order_release);
  monitor.join();

  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_FALSE(capacity_violated.load());
}

// ---------------------------------------------------------------------------
// ThreadPool: the exception-loss regression and resize safety.
// ---------------------------------------------------------------------------

TEST(ThreadPool, TaskExceptionIsRethrownFromWaitIdle) {
  // Pre-fix, the throw escaped worker_loop and std::terminate'd the whole
  // process — the submitter never learned which task failed.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, ErrorIsClearedAfterRethrowAndPoolStaysUsable) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("round 1 failure"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The barrier consumed the error; the pool is a working pool again.
  EXPECT_NO_THROW(pool.wait_idle());
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, OnlyFirstExceptionOfARoundIsReported) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("one of many"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);  // exactly one report
  EXPECT_NO_THROW(pool.wait_idle());  // the other seven were dropped
}

TEST(ThreadPool, DestructorRethrowsUnobservedTaskException) {
  // No wait_idle() barrier intervenes, so the destructor is the last
  // chance to surface the failure instead of swallowing it.
  EXPECT_THROW(
      {
        ThreadPool pool(1);
        pool.submit([] { throw std::runtime_error("unobserved"); });
      },
      std::runtime_error);
}

TEST(ThreadPool, SubmitWaitIdleStressUnderContention) {
  // TSan sweep: multiple submitter threads racing worker pickup with
  // wait_idle barriers between rounds.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> executed{0};
  constexpr int kRounds = 20;
  constexpr int kSubmitters = 3;
  constexpr int kTasksPerSubmitter = 50;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&pool, &executed] {
        for (int i = 0; i < kTasksPerSubmitter; ++i) {
          pool.submit(
              [&executed] { executed.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (auto& t : submitters) t.join();
    pool.wait_idle();
    const std::uint64_t expect =
        static_cast<std::uint64_t>(round + 1) * kSubmitters *
        kTasksPerSubmitter;
    ASSERT_EQ(executed.load(), expect);
  }
}

TEST(ThreadPool, SetAnalysisThreadsWaitsForInFlightWork) {
  // A mid-run resize used to tear the pool down under running tasks; now
  // it quiesces first, so no submitted task can be lost across a resize.
  origami::common::set_analysis_threads(4);
  std::atomic<int> completed{0};
  constexpr int kTasks = 24;
  for (int i = 0; i < kTasks; ++i) {
    origami::common::analysis_pool().submit([&completed] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Resize while the tasks above are (very likely) still in flight.
  origami::common::set_analysis_threads(2);
  EXPECT_EQ(completed.load(), kTasks);
  EXPECT_EQ(origami::common::analysis_threads(), 2u);
  // Restore the process-wide default for every other test in this binary.
  origami::common::set_analysis_threads(1);
  EXPECT_EQ(origami::common::analysis_threads(), 1u);
}

}  // namespace
