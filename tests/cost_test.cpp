// Tests for the Eq. 1–2 cost decomposition, the JCT bin estimate and the
// imbalance-factor metric.
#include <gtest/gtest.h>

#include "origami/cost/cost_model.hpp"

namespace origami::cost {
namespace {

using fsns::OpType;

CostParams simple_params() {
  CostParams p;
  p.t_inode = sim::micros(10);
  p.t_exec_read = sim::micros(100);
  p.t_exec_write = sim::micros(200);
  p.t_exec_readdir = sim::micros(150);
  p.t_rpc_handle = sim::micros(20);
  p.t_coor = sim::micros(500);
  p.rtt = sim::micros(100);
  return p;
}

TEST(CostModel, ExecTimeByClass) {
  CostModel m(simple_params());
  EXPECT_EQ(m.exec_time(OpType::kStat), sim::micros(100));
  EXPECT_EQ(m.exec_time(OpType::kOpen), sim::micros(100));
  EXPECT_EQ(m.exec_time(OpType::kSetattr), sim::micros(100));
  EXPECT_EQ(m.exec_time(OpType::kCreate), sim::micros(200));
  EXPECT_EQ(m.exec_time(OpType::kRename), sim::micros(200));
  EXPECT_EQ(m.exec_time(OpType::kReaddir), sim::micros(150));
}

TEST(CostModel, Eq2BaselineTerm) {
  // T_meta = T_inode*(m+k) + T_exec + T_rpc*m for an unaffected op.
  CostModel m(simple_params());
  const auto t = m.t_meta(OpType::kStat, /*k=*/4, /*m=*/2, 0, false);
  EXPECT_EQ(t, sim::micros(10) * 6 + sim::micros(100) + sim::micros(20) * 2);
}

TEST(CostModel, Eq2LsdirSurcharge) {
  CostModel m(simple_params());
  const auto base = m.t_meta(OpType::kReaddir, 3, 1, 0, false);
  const auto spread2 = m.t_meta(OpType::kReaddir, 3, 1, 2, false);
  EXPECT_EQ(spread2 - base, sim::micros(100) * 2);  // + RTT * i
}

TEST(CostModel, Eq2CoordinationSurcharge) {
  CostModel m(simple_params());
  const auto local = m.t_meta(OpType::kMkdir, 3, 1, 0, false);
  const auto cross = m.t_meta(OpType::kMkdir, 3, 1, 0, true);
  EXPECT_EQ(cross - local, sim::micros(500));  // + T_coor * 1(i>0)
  // "Other" ops never pay coordination even if flagged.
  EXPECT_EQ(m.t_meta(OpType::kStat, 3, 1, 0, true),
            m.t_meta(OpType::kStat, 3, 1, 0, false));
}

TEST(CostModel, Eq1NetworkTerm) {
  CostModel m(simple_params());
  const auto b = m.rct(OpType::kStat, 4, 3, 0, false);
  EXPECT_EQ(b.network, sim::micros(100) * 3);  // m * RTT
  EXPECT_EQ(b.hops, 3u);
  EXPECT_EQ(b.total(), b.t_meta + b.network);
}

TEST(CostModel, MoreHopsNeverCheaper) {
  CostModel m(simple_params());
  for (std::uint32_t k = 1; k < 12; ++k) {
    for (std::uint32_t mm = 1; mm < 5; ++mm) {
      EXPECT_LE(m.rct(OpType::kStat, k, mm, 0, false).total(),
                m.rct(OpType::kStat, k, mm + 1, 0, false).total());
    }
  }
}

TEST(JctAccumulator, MaxBinIsJct) {
  JctAccumulator acc(3);
  acc.charge(0, 100);
  acc.charge(1, 300);
  acc.charge(2, 200);
  acc.charge(1, 50);
  EXPECT_EQ(acc.jct(), 350);
  EXPECT_EQ(acc.total(), 650);
  EXPECT_EQ(acc.per_mds()[2], 200);
  acc.clear();
  EXPECT_EQ(acc.jct(), 0);
}

TEST(ImbalanceFactor, EvenIsZero) {
  EXPECT_DOUBLE_EQ(imbalance_factor({10, 10, 10, 10, 10}), 0.0);
}

TEST(ImbalanceFactor, AllOnOneIsOne) {
  EXPECT_DOUBLE_EQ(imbalance_factor({100, 0, 0, 0, 0}), 1.0);
}

TEST(ImbalanceFactor, MonotoneInSkew) {
  const double mild = imbalance_factor({30, 20, 20, 20, 10});
  const double strong = imbalance_factor({60, 10, 10, 10, 10});
  EXPECT_GT(mild, 0.0);
  EXPECT_LT(mild, strong);
  EXPECT_LT(strong, 1.0);
}

TEST(ImbalanceFactor, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(imbalance_factor({}), 0.0);
  EXPECT_DOUBLE_EQ(imbalance_factor({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(imbalance_factor({0, 0, 0}), 0.0);
}

TEST(ImbalanceFactor, ScaleInvariant) {
  const double a = imbalance_factor({3, 1, 2});
  const double b = imbalance_factor({300, 100, 200});
  EXPECT_DOUBLE_EQ(a, b);
}

// Paper §5.3's example: "in a cluster with 5 MDSs, an Imbalance Factor of 1
// means all requests go to a single MDS".
TEST(ImbalanceFactor, PaperExample) {
  EXPECT_DOUBLE_EQ(imbalance_factor({42, 0, 0, 0, 0}), 1.0);
}

}  // namespace
}  // namespace origami::cost
