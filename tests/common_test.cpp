// Unit tests for the origami::common substrate: status/result types, RNG,
// Zipf/alias sampling, hashing, histograms, CSV, thread pool, MPMC queue.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <thread>

#include "origami/common/csv.hpp"
#include "origami/common/hash.hpp"
#include "origami/common/histogram.hpp"
#include "origami/common/log.hpp"
#include "origami/common/mpmc_queue.hpp"
#include "origami/common/rng.hpp"
#include "origami/common/status.hpp"
#include "origami/common/thread_pool.hpp"
#include "origami/common/zipf.hpp"

namespace origami::common {
namespace {

// ---------------------------------------------------------------- Status --

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = Status::not_found("missing inode");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing inode");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing inode");
}

TEST(Status, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::internal("a"), Status::internal("b"));
  EXPECT_FALSE(Status::internal("a") == Status::corruption("a"));
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::unavailable("down"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

// ------------------------------------------------------------------- RNG --

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIsRoughlyUniform) {
  Xoshiro256 rng(99);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.uniform(10)];
  for (int b : buckets) {
    EXPECT_NEAR(b, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng(5);
  WelfordStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Xoshiro256 rng(6);
  double sum = 0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 50000, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Xoshiro256 a(11);
  Xoshiro256 b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------------ Zipf --

class ZipfShape : public ::testing::TestWithParam<double> {};

TEST_P(ZipfShape, RankZeroIsMostPopularAndInRange) {
  const double theta = GetParam();
  ZipfDistribution zipf(1000, theta);
  Xoshiro256 rng(42);
  std::vector<int> hits(1000, 0);
  for (int i = 0; i < 200000; ++i) {
    const auto r = zipf(rng);
    ASSERT_LT(r, 1000u);
    ++hits[r];
  }
  // Rank 0 must dominate for skewed thetas.
  if (theta >= 0.8) {
    EXPECT_GT(hits[0], hits[10]);
    EXPECT_GT(hits[0], hits[999] * 5);
  }
  // Monotone-ish decay over decades (theta 0 is uniform — no decay).
  if (theta >= 0.5) {
    EXPECT_GE(hits[0] + hits[1] + hits[2], hits[500] + hits[501] + hits[502]);
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfShape,
                         ::testing::Values(0.0, 0.5, 0.8, 0.99, 1.0, 1.2));

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfDistribution zipf(100, 0.0);
  Xoshiro256 rng(1);
  std::vector<int> hits(100, 0);
  for (int i = 0; i < 100000; ++i) ++hits[zipf(rng)];
  for (int h : hits) EXPECT_NEAR(h, 1000, 250);
}

TEST(Zipf, SkewMatchesTheory) {
  // For theta=1, P(rank 0) ~= 1/H_n; with n=1000, H_n ~= 7.49.
  ZipfDistribution zipf(1000, 1.0);
  Xoshiro256 rng(2);
  int zero = 0;
  constexpr int kDraws = 300000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf(rng) == 0) ++zero;
  }
  EXPECT_NEAR(static_cast<double>(zero) / kDraws, 1.0 / 7.49, 0.02);
}

TEST(Zipf, SingleElement) {
  ZipfDistribution zipf(1, 0.9);
  Xoshiro256 rng(1);
  EXPECT_EQ(zipf(rng), 0u);
}

TEST(Zipf, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.1), std::invalid_argument);
}

TEST(AliasTable, MatchesWeights) {
  AliasTable table({1.0, 2.0, 4.0, 1.0});
  Xoshiro256 rng(9);
  std::array<int, 4> hits{};
  constexpr int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) ++hits[table(rng)];
  EXPECT_NEAR(hits[0], kDraws / 8, kDraws / 8 * 0.15);
  EXPECT_NEAR(hits[1], kDraws / 4, kDraws / 4 * 0.1);
  EXPECT_NEAR(hits[2], kDraws / 2, kDraws / 2 * 0.1);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  AliasTable table({0.0, 1.0, 0.0});
  Xoshiro256 rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(table(rng), 1u);
}

// ------------------------------------------------------------------ Hash --

TEST(Hash, Fnv1aKnownValues) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, Mix64Bijective) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u);
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

// ------------------------------------------------------------- Histogram --

TEST(Welford, MeanVarianceMinMax) {
  WelfordStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Welford, MergeEqualsCombined) {
  WelfordStats a;
  WelfordStats b;
  WelfordStats all;
  Xoshiro256 rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3 + 1;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  // Merge reorders the additions, so only near-equality holds here; the
  // bit-exact guarantee (next test) applies to a single add() stream.
  EXPECT_NEAR(a.sum(), all.sum(), 1e-9 * std::abs(all.sum()));
}

TEST(Welford, SumIsExactOverLongMixedMagnitudeRuns) {
  // Regression: sum() used to be reconstructed as mean * count, and the
  // incremental mean update rounds on every add — over millions of
  // mixed-magnitude samples the reconstructed total drifts from the true
  // sum. The exact running sum must match naive left-to-right summation
  // bit for bit.
  WelfordStats s;
  Xoshiro256 rng(7);
  double naive = 0.0;
  constexpr int kSamples = 10'000'000;
  for (int i = 0; i < kSamples; ++i) {
    // Magnitudes spanning ~9 decades, alternating sign: the worst case for
    // incremental-mean reconstruction.
    const double mag = std::pow(10.0, static_cast<double>(i % 10) - 3.0);
    const double x = (i % 2 == 0 ? 1.0 : -1.0) * rng.uniform_double() * mag +
                     rng.uniform_double();
    s.add(x);
    naive += x;
  }
  EXPECT_EQ(s.count(), static_cast<std::uint64_t>(kSamples));
  EXPECT_DOUBLE_EQ(s.sum(), naive);
  // The old reconstruction is measurably off on this stream; guard that the
  // exact sum is genuinely closer to the truth than mean*count.
  const double reconstructed = s.mean() * static_cast<double>(s.count());
  EXPECT_LE(std::abs(s.sum() - naive), std::abs(reconstructed - naive));
}

TEST(LatencyHistogram, ExactForSmallValues) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) h.add(v);
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 63u);
}

TEST(LatencyHistogram, QuantileAccuracyWithinRelativeError) {
  LatencyHistogram h;
  Xoshiro256 rng(77);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.exponential(1e-6));
    values.push_back(v);
    h.add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const auto exact = values[static_cast<std::size_t>(
        q * static_cast<double>(values.size() - 1))];
    const auto approx = h.quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.05 + 2.0)
        << "q=" << q;
  }
}

TEST(LatencyHistogram, MeanMatches) {
  LatencyHistogram h;
  std::uint64_t sum = 0;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.add(v * 1000);
    sum += v * 1000;
  }
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 1000.0);
}

TEST(LatencyHistogram, MergeAndClear) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.add(100);
  b.add(10000, 3);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 100u);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.quantile(0.5), 0u);
}

// ------------------------------------------------------------------- CSV --

TEST(Csv, WritesEscapedRows) {
  const std::string path = ::testing::TempDir() + "/origami_csv_test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.is_open());
    w.header({"name", "value"});
    w.field("plain").field(std::int64_t{-3}).endrow();
    w.field("has,comma").field(2.5).endrow();
    w.field("has\"quote").field(std::uint64_t{7}).endrow();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,-3");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\",2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\",7");
  std::remove(path.c_str());
}

// ----------------------------------------------------------- Thread pool --

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  parallel_for(
      pool, hits.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// ------------------------------------------------------------ MPMC queue --

TEST(MpmcQueue, FifoSingleThread) {
  MpmcQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, CloseWakesConsumers) {
  MpmcQueue<int> q;
  std::thread consumer([&] {
    const auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  q.close();
  consumer.join();
}

TEST(MpmcQueue, MultiProducerMultiConsumerDeliversAll) {
  MpmcQueue<int> q;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        received.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) ASSERT_TRUE(q.push(i));
    });
  }
  for (auto& t : producers) t.join();
  while (q.size() > 0) std::this_thread::yield();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(received.load(), 3 * kPerProducer);
  EXPECT_EQ(sum.load(), 3L * kPerProducer * (kPerProducer + 1) / 2);
}

// ------------------------------------------------------------------- Log --

TEST(Log, LevelFiltering) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kOff);
  ORIGAMI_LOG_ERROR("test") << "must not crash while filtered";
  set_log_level(prev);
  SUCCEED();
}

}  // namespace
}  // namespace origami::common
