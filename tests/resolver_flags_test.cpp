// Tests for the textual path resolver and the CLI flags parser.
#include <gtest/gtest.h>

#include "origami/common/flags.hpp"
#include "origami/fsns/path_resolver.hpp"
#include "origami/wl/generators.hpp"

namespace origami {
namespace {

using fsns::NodeId;
using fsns::PathResolver;
using fsns::split_path;

// -------------------------------------------------------------- split_path --

TEST(SplitPath, Basics) {
  EXPECT_TRUE(split_path("").empty());
  EXPECT_TRUE(split_path("/").empty());
  const auto parts = split_path("/usr/bin/ls");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "usr");
  EXPECT_EQ(parts[2], "ls");
}

TEST(SplitPath, ToleratesRedundantSlashesAndDots) {
  const auto parts = split_path("//a///b/./c/");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

// ------------------------------------------------------------ PathResolver --

class ResolverFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    usr = tree.add_dir(fsns::kRootNode, "usr");
    bin = tree.add_dir(usr, "bin");
    ls = tree.add_file(bin, "ls");
    tree.add_file(usr, "README");
    tree.finalize();
    resolver = std::make_unique<PathResolver>(tree);
  }
  fsns::DirTree tree;
  NodeId usr{}, bin{}, ls{};
  std::unique_ptr<PathResolver> resolver;
};

TEST_F(ResolverFixture, ResolvesExistingPaths) {
  EXPECT_EQ(resolver->resolve("/"), fsns::kRootNode);
  EXPECT_EQ(resolver->resolve(""), fsns::kRootNode);
  EXPECT_EQ(resolver->resolve("/usr"), usr);
  EXPECT_EQ(resolver->resolve("/usr/bin"), bin);
  EXPECT_EQ(resolver->resolve("/usr/bin/ls"), ls);
  EXPECT_EQ(resolver->resolve("//usr//bin/./ls"), ls);
}

TEST_F(ResolverFixture, RejectsMissingAndFileDescent) {
  EXPECT_FALSE(resolver->resolve("/usr/sbin").has_value());
  EXPECT_FALSE(resolver->resolve("/usr/bin/ls/too-deep").has_value());
  EXPECT_FALSE(resolver->resolve("/usr/README/x").has_value());
}

TEST_F(ResolverFixture, ChildLookup) {
  EXPECT_EQ(resolver->child(fsns::kRootNode, "usr"), usr);
  EXPECT_FALSE(resolver->child(fsns::kRootNode, "var").has_value());
  EXPECT_EQ(resolver->index_size(), tree.size() - 1);
}

TEST_F(ResolverFixture, ResolutionChainRootFirst) {
  const auto chain = resolver->resolution_chain("/usr/bin/ls");
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->size(), 4u);
  EXPECT_EQ((*chain)[0], fsns::kRootNode);
  EXPECT_EQ((*chain)[3], ls);
  EXPECT_FALSE(resolver->resolution_chain("/nope").has_value());
}

TEST(PathResolver, AgreesWithFullPathOnGeneratedNamespace) {
  // Round-trip property: resolve(full_path(id)) == id for every node.
  wl::TraceRwConfig cfg;
  cfg.ops = 1;
  cfg.projects = 4;
  cfg.modules_per_project = 3;
  cfg.sources_per_module = 6;
  cfg.headers_shared = 30;
  const wl::Trace trace = wl::make_trace_rw(cfg);
  const PathResolver resolver(trace.tree);
  for (NodeId id = 0; id < trace.tree.size(); ++id) {
    const auto resolved = resolver.resolve(trace.tree.full_path(id));
    ASSERT_TRUE(resolved.has_value()) << trace.tree.full_path(id);
    EXPECT_EQ(*resolved, id);
  }
}

// ------------------------------------------------------------------- Flags --

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",     "gen",          "--ops",  "5000",
                        "--seed=9", "--data-path",  "--rate", "2.5",
                        "--cache",  "off",          "file.bin"};
  common::Flags flags(static_cast<int>(std::size(argv)), argv);
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "gen");
  EXPECT_EQ(flags.positional()[1], "file.bin");
  EXPECT_EQ(flags.get_int("ops", 0), 5000);
  EXPECT_EQ(flags.get_int("seed", 0), 9);
  EXPECT_TRUE(flags.get_bool("data-path", false));
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_FALSE(flags.get_bool("cache", true));
  EXPECT_TRUE(flags.has("ops"));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  common::Flags flags(1, argv);
  EXPECT_EQ(flags.get("name", "dflt"), "dflt");
  EXPECT_EQ(flags.get_int("n", 42), 42);
  EXPECT_TRUE(flags.get_bool("b", true));
  EXPECT_TRUE(flags.positional().empty());
}

TEST(Flags, TrailingBooleanFlag) {
  const char* argv[] = {"prog", "--verbose"};
  common::Flags flags(2, argv);
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(Flags, NamesListsSeenFlags) {
  const char* argv[] = {"prog", "--a", "1", "--b=2"};
  common::Flags flags(4, argv);
  const auto names = flags.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace origami
