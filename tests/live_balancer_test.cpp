// Tests for the live OrigamiFS rebalancing loop (Data Collector → feature
// extraction → model → Migrator, all against the real service).
#include <gtest/gtest.h>

#include "origami/common/rng.hpp"
#include "origami/core/features.hpp"
#include "origami/core/live_balancer.hpp"

namespace origami::core {
namespace {

/// A model that predicts benefit == subtree read share (feature 3) — a
/// stand-in for the trained benefit regressor.
std::shared_ptr<ml::GbdtModel> read_share_model() {
  ml::Dataset data(feature_name_vector());
  common::Xoshiro256 rng(5);
  std::vector<float> row(kFeatureCount);
  for (int i = 0; i < 2'000; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.uniform_double());
    data.add_row(row, row[3]);
  }
  ml::GbdtParams params;
  params.rounds = 40;
  return std::make_shared<ml::GbdtModel>(ml::GbdtModel::train(data, params));
}

fs::OrigamiFs make_fs_with_hotspot() {
  fs::OrigamiFs::Options opt;
  opt.shards = 3;
  fs::OrigamiFs fsys(opt);
  for (const char* d : {"/hot", "/hot/sub", "/cold", "/cold/sub"}) {
    EXPECT_TRUE(fsys.mkdir(d).is_ok());
  }
  for (int i = 0; i < 40; ++i) {
    fsys.create("/hot/sub/f" + std::to_string(i));
    fsys.create("/cold/sub/f" + std::to_string(i));
  }
  // Hammer the hot subtree.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 40; ++i) {
      fsys.stat("/hot/sub/f" + std::to_string(i));
    }
  }
  // Touch the cold side a little.
  for (int i = 0; i < 10; ++i) fsys.stat("/cold/sub/f" + std::to_string(i));
  return fsys;
}

TEST(CollectActivity, ReportsShapeAndCounters) {
  fs::OrigamiFs fsys = make_fs_with_hotspot();
  auto activity = fsys.collect_activity(/*reset=*/false);
  // Root + 4 dirs.
  EXPECT_EQ(activity.size(), 5u);
  const fs::OrigamiFs::DirActivity* hot_sub = nullptr;
  for (const auto& a : activity) {
    if (a.depth == 2 && a.sub_files == 40 && a.reads > 700) hot_sub = &a;
  }
  ASSERT_NE(hot_sub, nullptr);
  EXPECT_EQ(hot_sub->sub_dirs, 0u);
  EXPECT_EQ(hot_sub->shard, 0u);
}

TEST(CollectActivity, ResetStartsNewEpoch) {
  fs::OrigamiFs fsys = make_fs_with_hotspot();
  (void)fsys.collect_activity(/*reset=*/true);
  const auto after = fsys.collect_activity(/*reset=*/false);
  for (const auto& a : after) {
    EXPECT_EQ(a.reads, 0u);
    EXPECT_EQ(a.writes, 0u);
  }
}

TEST(PathOf, ReconstructsPaths) {
  fs::OrigamiFs fsys;
  const auto a = fsys.mkdir("/a").value();
  const auto b = fsys.mkdir("/a/b").value();
  EXPECT_EQ(fsys.path_of(fs::kRootIno).value(), "/");
  EXPECT_EQ(fsys.path_of(a).value(), "/a");
  EXPECT_EQ(fsys.path_of(b).value(), "/a/b");
  EXPECT_FALSE(fsys.path_of(999999).is_ok());
}

TEST(LiveBalancer, MovesHotSubtreeOffShardZero) {
  fs::OrigamiFs fsys = make_fs_with_hotspot();
  LiveOrigamiBalancer::Params params;
  params.min_subtree_ops = 8;
  params.min_predicted_benefit = 0.0;
  LiveOrigamiBalancer balancer(read_share_model(), params);

  const auto moves = balancer.rebalance_epoch(fsys);
  ASSERT_FALSE(moves.empty());
  EXPECT_EQ(moves[0].from, 0u);
  EXPECT_NE(moves[0].to, 0u);
  EXPECT_GT(moves[0].entries_moved, 0u);
  EXPECT_FALSE(moves[0].path.empty());
  // The namespace survives the migration intact.
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(fsys.stat("/hot/sub/f" + std::to_string(i)).is_ok());
  }
  // Some fragment really lives elsewhere now.
  std::uint64_t off_zero = 0;
  for (std::size_t s = 1; s < fsys.shard_stats().size(); ++s) {
    off_zero += fsys.shard_stats()[s].entries;
  }
  EXPECT_GT(off_zero, 0u);
}

TEST(LiveBalancer, TriggerHoldsWhenBalanced) {
  fs::OrigamiFs fsys = make_fs_with_hotspot();
  LiveOrigamiBalancer::Params params;
  params.min_subtree_ops = 8;
  params.min_predicted_benefit = 0.0;
  LiveOrigamiBalancer balancer(read_share_model(), params);
  (void)balancer.rebalance_epoch(fsys);

  // Next epoch: generate *balanced* traffic and expect no decisions.
  const auto hot_owner = fsys.owner_of("/hot/sub").value();
  const auto cold_owner = fsys.owner_of("/cold/sub").value();
  if (hot_owner != cold_owner) {
    for (int round = 0; round < 10; ++round) {
      for (int i = 0; i < 40; ++i) {
        fsys.stat("/hot/sub/f" + std::to_string(i));
        fsys.stat("/cold/sub/f" + std::to_string(i));
      }
    }
    // Two shards evenly loaded out of three: IF = 0.25 > trigger 0.05, so
    // set a trigger that tolerates it.
    LiveOrigamiBalancer::Params lenient = params;
    lenient.trigger_threshold = 0.6;
    LiveOrigamiBalancer second(read_share_model(), lenient);
    EXPECT_TRUE(second.rebalance_epoch(fsys).empty());
  }
}

TEST(LiveBalancer, NullModelIsNoop) {
  fs::OrigamiFs fsys = make_fs_with_hotspot();
  LiveOrigamiBalancer balancer(nullptr);
  EXPECT_TRUE(balancer.rebalance_epoch(fsys).empty());
}

}  // namespace
}  // namespace origami::core

#include "origami/fs/live_replay.hpp"
#include "origami/wl/generators.hpp"

namespace origami::core {
namespace {

TEST(LiveReplay, ExecutesTraceWithoutFailures) {
  wl::TraceRwConfig cfg;
  cfg.ops = 20'000;
  cfg.projects = 4;
  cfg.modules_per_project = 3;
  cfg.sources_per_module = 8;
  cfg.headers_shared = 40;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;
  fs::OrigamiFs fsys(fopt);
  const auto stats = fs::replay_on_live(trace, fsys, 5'000);
  EXPECT_EQ(stats.executed, trace.ops.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.migrations, 0u);  // no balancer wired in
  EXPECT_DOUBLE_EQ(stats.shard_imbalance, 1.0);  // everything on shard 0
}

TEST(LiveReplay, BalancerHookReducesImbalance) {
  wl::TraceRwConfig cfg;
  cfg.ops = 60'000;
  cfg.projects = 6;
  cfg.modules_per_project = 4;
  cfg.sources_per_module = 10;
  cfg.headers_shared = 60;
  const wl::Trace trace = wl::make_trace_rw(cfg);

  fs::OrigamiFs::Options fopt;
  fopt.shards = 3;
  fs::OrigamiFs fsys(fopt);

  LiveOrigamiBalancer::Params p;
  p.min_subtree_ops = 16;
  p.min_predicted_benefit = 0.0;
  LiveOrigamiBalancer balancer(read_share_model(), p);
  const auto stats = fs::replay_on_live(
      trace, fsys, 10'000,
      [&balancer](fs::OrigamiFs& f) -> std::uint64_t {
        return balancer.rebalance_epoch(f).size();
      });
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.epochs, 2u);
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_LT(stats.shard_imbalance, 0.9);
}

}  // namespace
}  // namespace origami::core
