// Tests for the skip-list memtable structure and Db checkpoint/restore.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>

#include "origami/common/rng.hpp"
#include "origami/kv/db.hpp"
#include "origami/kv/skiplist.hpp"

namespace origami::kv {
namespace {

// ---------------------------------------------------------------- SkipList --

TEST(SkipList, UpsertFindBasics) {
  SkipList<int> list;
  EXPECT_TRUE(list.empty());
  list.upsert("banana") = 2;
  list.upsert("apple") = 1;
  list.upsert("cherry") = 3;
  EXPECT_EQ(list.size(), 3u);
  ASSERT_NE(list.find("apple"), nullptr);
  EXPECT_EQ(*list.find("apple"), 1);
  EXPECT_EQ(list.find("durian"), nullptr);
  list.upsert("apple") = 11;  // overwrite, not duplicate
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(*list.find("apple"), 11);
}

TEST(SkipList, ScanIsSortedAndBounded) {
  SkipList<int> list;
  for (int i : {5, 3, 9, 1, 7}) {
    list.upsert("k" + std::to_string(i)) = i;
  }
  std::string order;
  list.scan({}, {}, [&](std::string_view k, const int&) {
    order += k.back();
    return true;
  });
  EXPECT_EQ(order, "13579");
  order.clear();
  list.scan("k3", "k7", [&](std::string_view k, const int&) {
    order += k.back();
    return true;
  });
  EXPECT_EQ(order, "35");
  // Early stop.
  int seen = 0;
  list.scan({}, {}, [&](std::string_view, const int&) { return ++seen < 2; });
  EXPECT_EQ(seen, 2);
}

TEST(SkipList, MatchesReferenceUnderRandomLoad) {
  SkipList<std::uint64_t> list;
  std::map<std::string, std::uint64_t> ref;
  common::Xoshiro256 rng(99);
  for (int i = 0; i < 20'000; ++i) {
    const std::string key = "key" + std::to_string(rng.uniform(2'000));
    const std::uint64_t value = rng();
    list.upsert(key) = value;
    ref[key] = value;
  }
  EXPECT_EQ(list.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(list.find(k), nullptr) << k;
    EXPECT_EQ(*list.find(k), v);
  }
  // Ordered iteration must match the reference map exactly.
  auto it = ref.begin();
  list.scan({}, {}, [&](std::string_view k, const std::uint64_t& v) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, ref.end());
}

TEST(SkipList, ArenaAccountingGrows) {
  SkipList<int> list;
  const std::size_t before = list.arena_bytes();
  list.upsert(std::string(1000, 'x')) = 1;
  EXPECT_GT(list.arena_bytes(), before + 1000);
}

// -------------------------------------------------------------- checkpoint --

TEST(DbCheckpoint, RoundtripPreservesEverything) {
  const std::string path = ::testing::TempDir() + "/origami_ckpt.bin";
  DbOptions opts;
  opts.memtable_bytes = 1024;  // force multi-level structure
  opts.runs_per_guard = 2;
  Db db(opts);
  std::map<std::string, std::string> ref;
  common::Xoshiro256 rng(7);
  for (int i = 0; i < 2'000; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform(500));
    if (rng.chance(0.8)) {
      const std::string value = "v" + std::to_string(rng());
      ASSERT_TRUE(db.put(key, value).is_ok());
      ref[key] = value;
    } else {
      ASSERT_TRUE(db.del(key).is_ok());
      ref.erase(key);
    }
  }
  ASSERT_TRUE(db.checkpoint(path).is_ok());

  Db restored(opts);
  ASSERT_TRUE(restored.restore(path).is_ok());
  EXPECT_EQ(restored.count_live(), ref.size());
  for (const auto& [k, v] : ref) {
    auto r = restored.get(k);
    ASSERT_TRUE(r.is_ok()) << k;
    EXPECT_EQ(r.value(), v);
  }
  // Writes continue with fresh seqnos after restore.
  ASSERT_TRUE(restored.put("post-restore", "yes").is_ok());
  EXPECT_TRUE(restored.get("post-restore").is_ok());
  std::remove(path.c_str());
}

TEST(DbCheckpoint, UnflushedMemtableIncluded) {
  const std::string path = ::testing::TempDir() + "/origami_ckpt_mem.bin";
  Db db;
  ASSERT_TRUE(db.put("only-in-memtable", "1").is_ok());
  ASSERT_TRUE(db.checkpoint(path).is_ok());
  Db restored;
  ASSERT_TRUE(restored.restore(path).is_ok());
  EXPECT_TRUE(restored.get("only-in-memtable").is_ok());
  std::remove(path.c_str());
}

TEST(DbCheckpoint, DetectsCorruption) {
  const std::string path = ::testing::TempDir() + "/origami_ckpt_bad.bin";
  Db db;
  ASSERT_TRUE(db.put("a", "1").is_ok());
  ASSERT_TRUE(db.checkpoint(path).is_ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('!');
  }
  Db restored;
  const auto status = restored.restore(path);
  EXPECT_EQ(status.code(), common::StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DbCheckpoint, MissingFileIsNotFound) {
  Db db;
  EXPECT_EQ(db.restore("/nonexistent/ckpt").code(),
            common::StatusCode::kNotFound);
}

}  // namespace
}  // namespace origami::kv

// Appended coverage: iterator, major compaction and level introspection.
namespace origami::kv {
namespace {

TEST(DbIterator, SnapshotOrderedIteration) {
  Db db;
  ASSERT_TRUE(db.put("c", "3").is_ok());
  ASSERT_TRUE(db.put("a", "1").is_ok());
  ASSERT_TRUE(db.flush().is_ok());
  ASSERT_TRUE(db.put("b", "2").is_ok());
  ASSERT_TRUE(db.del("c").is_ok());

  auto it = db.new_iterator();
  std::string keys;
  for (; it.valid(); it.next()) keys += it.key();
  EXPECT_EQ(keys, "ab");

  // Snapshot semantics: later writes are invisible.
  ASSERT_TRUE(db.put("z", "26").is_ok());
  it.seek("a");
  std::string again;
  for (; it.valid(); it.next()) again += it.key();
  EXPECT_EQ(again, "ab");
}

TEST(DbIterator, SeekPositionsAtLowerBound) {
  Db db;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.put("k" + std::to_string(i), "v").is_ok());
  }
  auto it = db.new_iterator();
  it.seek("k5");
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), "k5");
  it.seek("k95");  // past the end
  EXPECT_FALSE(it.valid());
}

TEST(DbCompactAll, SettlesToOneRunPerGuardAndDropsTombstones) {
  DbOptions opts;
  opts.memtable_bytes = 512;
  opts.runs_per_guard = 8;  // avoid automatic compaction
  Db db(opts);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.put("key" + std::to_string(i), "value").is_ok());
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.del("key" + std::to_string(i)).is_ok());
  }
  ASSERT_TRUE(db.compact_all().is_ok());

  std::size_t live = 0;
  std::size_t total_entries = 0;
  for (const auto& level : db.level_info()) {
    EXPECT_LE(level.runs, level.guards);  // at most one run per guard
    total_entries += level.entries;
  }
  db.scan({}, {}, [&](std::string_view, std::string_view) {
    ++live;
    return true;
  });
  EXPECT_EQ(live, 200u);
  // Tombstones at the bottom were dropped, so stored entries ~= live ones.
  EXPECT_LE(total_entries, 400u);
  EXPECT_EQ(db.count_live(), 200u);
  // Reads still correct post-compaction.
  EXPECT_FALSE(db.get("key0").is_ok());
  EXPECT_TRUE(db.get("key300").is_ok());
}

TEST(DbLevelInfo, TracksStructure) {
  DbOptions opts;
  opts.memtable_bytes = 256;
  Db db(opts);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.put("k" + std::to_string(i), "0123456789").is_ok());
  }
  const auto info = db.level_info();
  ASSERT_EQ(info.size(), 4u);  // default level count
  std::size_t runs = 0;
  std::size_t bytes = 0;
  for (const auto& l : info) {
    runs += l.runs;
    bytes += l.bytes;
  }
  EXPECT_GT(runs, 0u);
  EXPECT_GT(bytes, 0u);
}

}  // namespace
}  // namespace origami::kv
