// Tests for the arrival plane (wl/arrival.hpp): spec parsing, strict
// registry validation, the catalogue, the legacy-mapping resolver, and —
// the load-bearing part — the golden byte-identity contract: the closed
// and open loops replayed through `ArrivalPolicy` must reproduce the
// pre-refactor engines' output exactly, in BOTH execution planes (epoch
// DES and live service), clean and faulted, across seeds. The goldens in
// tests/support/arrival_goldens.inc were captured before the refactor;
// regenerate them only with tools/arrival_goldens.cpp and audit the diff.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "origami/cluster/replay.hpp"
#include "origami/engine/observer.hpp"
#include "origami/fs/live_replay.hpp"
#include "origami/policy/registry.hpp"
#include "origami/wl/arrival.hpp"
#include "origami/wl/generators.hpp"

#include "support/arrival_golden_configs.hpp"
#include "support/fingerprints.hpp"

namespace origami {
namespace {

#include "support/arrival_goldens.inc"

std::string golden_for(const std::string& key) {
  for (const Golden& g : kGoldens) {
    if (key == g.key) return g.fp;
  }
  ADD_FAILURE() << "no golden for key " << key;
  return {};
}

std::string key_of(const char* plane, std::uint64_t seed, bool faulted,
                   bool open) {
  return std::string(plane) + "/" + std::to_string(seed) +
         (faulted ? "/faulted" : "/clean") + (open ? "/open" : "/closed");
}

cluster::RunResult run_epoch(const wl::Trace& trace,
                             const cluster::ReplayOptions& opt) {
  policy::PolicyContext ctx;
  ctx.options = &opt;
  auto made = policy::Registry::builtin().make("greedy-spill", ctx);
  EXPECT_TRUE(made.is_ok()) << made.status().to_string();
  return cluster::replay_trace(trace, opt, *made.value());
}

fs::LiveReplayStats run_live(const wl::Trace& trace,
                             const fs::LiveReplayOptions& opt) {
  fs::OrigamiFs::Options fopt;
  fopt.shards = 4;
  fs::OrigamiFs fsys(fopt);
  return fs::replay_on_live(trace, fsys, opt);
}

// ---------------------------------------------------------------- goldens --

TEST(ArrivalGolden, EpochPlaneByteIdenticalToPreRefactorEngines) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const wl::Trace trace = testing::golden_trace(seed);
    for (const bool faulted : {false, true}) {
      for (const bool open : {false, true}) {
        const auto opt = testing::golden_epoch_options(seed, faulted, open);
        const auto r = run_epoch(trace, opt);
        EXPECT_EQ(r.arrival_name, open ? "open" : "closed");
        EXPECT_EQ(testing::run_result_fingerprint(r),
                  golden_for(key_of("epoch", seed, faulted, open)))
            << "epoch plane diverged (seed " << seed << ", faulted "
            << faulted << ", open " << open << ")";
      }
    }
  }
}

TEST(ArrivalGolden, LivePlaneByteIdenticalToPreRefactorEngines) {
  for (std::uint64_t seed : {1, 2, 3}) {
    const wl::Trace trace = testing::golden_trace(seed);
    for (const bool faulted : {false, true}) {
      for (const bool open : {false, true}) {
        const auto opt = testing::golden_live_options(seed, faulted, open);
        const auto stats = run_live(trace, opt);
        EXPECT_EQ(testing::live_stats_fingerprint(stats),
                  golden_for(key_of("live", seed, faulted, open)))
            << "live plane diverged (seed " << seed << ", faulted "
            << faulted << ", open " << open << ")";
      }
    }
  }
}

// The explicit spec spellings construct the same processes as the legacy
// field mapping — `--arrival=open:rate=R` IS the old `open_loop_rate = R`.
TEST(ArrivalGolden, ExplicitSpecsMatchLegacyFieldMapping) {
  const std::uint64_t seed = 2;
  const wl::Trace trace = testing::golden_trace(seed);
  {
    auto opt = testing::golden_epoch_options(seed, /*faulted=*/true,
                                             /*open=*/false);
    opt.arrival = "closed";
    EXPECT_EQ(testing::run_result_fingerprint(run_epoch(trace, opt)),
              golden_for(key_of("epoch", seed, true, false)));
  }
  {
    auto opt = testing::golden_epoch_options(seed, /*faulted=*/true,
                                             /*open=*/true);
    opt.open_loop_rate = 0.0;
    opt.arrival = "open:rate=120000";
    EXPECT_EQ(testing::run_result_fingerprint(run_epoch(trace, opt)),
              golden_for(key_of("epoch", seed, true, true)));
  }
  {
    auto opt = testing::golden_live_options(seed, /*faulted=*/true,
                                            /*open=*/true);
    opt.issue_rate = 0.0;
    opt.arrival = "paced:rate=150000";
    EXPECT_EQ(testing::live_stats_fingerprint(run_live(trace, opt)),
              golden_for(key_of("live", seed, true, true)));
  }
}

// ----------------------------------------------------------- spec parsing --

TEST(ArrivalSpec, ParsesNameAndParams) {
  auto r = wl::parse_arrival_spec("bursty:rate=9000,amp=0.3");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().name, "bursty");
  ASSERT_EQ(r.value().params.size(), 2u);
  EXPECT_EQ(r.value().params[0].first, "rate");
  EXPECT_EQ(r.value().params[0].second, "9000");
  EXPECT_EQ(r.value().params[1].first, "amp");
  EXPECT_EQ(r.value().params[1].second, "0.3");
}

TEST(ArrivalSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", ":k=v", "x:novalue", "x:=3", "x:a=1,b",
                          "x:a=1,", "x:,a=1"}) {
    EXPECT_FALSE(wl::parse_arrival_spec(bad).is_ok())
        << "accepted malformed spec '" << bad << "'";
  }
}

TEST(ArrivalRegistry, UnknownNameListsRegisteredProcesses) {
  const auto s = wl::ArrivalRegistry::builtin().validate("warble");
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.to_string().find("closed"), std::string::npos);
  EXPECT_NE(s.to_string().find("bursty"), std::string::npos);
}

TEST(ArrivalRegistry, UnknownParamListsValidKeys) {
  const auto s = wl::ArrivalRegistry::builtin().validate("bursty:ratee=1");
  ASSERT_FALSE(s.is_ok());
  EXPECT_NE(s.to_string().find("rate"), std::string::npos);
  EXPECT_NE(s.to_string().find("spike-prob"), std::string::npos);
}

TEST(ArrivalRegistry, RejectsOutOfRangeValues) {
  const auto& reg = wl::ArrivalRegistry::builtin();
  for (const char* bad :
       {"open:rate=-1", "open:rate=0", "open:rate=nope", "paced:rate=-2",
        "trace:speed=0", "bursty:rate=-5", "bursty:spike-prob=1.5",
        "bursty:amp=-0.1", "tenant:tenants=0", "tenant:rate=-1",
        "tenant:burst=0"}) {
    EXPECT_FALSE(reg.validate(bad).is_ok())
        << "accepted out-of-range spec '" << bad << "'";
  }
  for (const char* good :
       {"closed", "open", "open:rate=1", "paced:rate=250000",
        "trace:speed=0.5", "bursty:spike-prob=0", "bursty:amp=1",
        "tenant:tenants=3,rate=100,burst=1"}) {
    EXPECT_TRUE(reg.validate(good).is_ok())
        << "rejected valid spec '" << good << "': "
        << reg.validate(good).to_string();
  }
}

TEST(ArrivalRegistry, TraceReplayNeedsTimedWorkload) {
  const auto& reg = wl::ArrivalRegistry::builtin();
  // Validation (no trace in hand) passes; construction demands timestamps.
  EXPECT_TRUE(reg.validate("trace").is_ok());
  const wl::Trace untimed = testing::golden_trace(1);
  auto made = reg.make("trace", {&untimed, 4});
  ASSERT_FALSE(made.is_ok());
  EXPECT_NE(made.status().to_string().find("timestamps"), std::string::npos);

  wl::TraceFalconConfig cfg;
  cfg.ops = 2'000;
  const wl::Trace timed = wl::make_trace_falcon(cfg);
  ASSERT_TRUE(timed.timed());
  EXPECT_TRUE(reg.make("trace", {&timed, 4}).is_ok());
}

TEST(ArrivalRegistry, DescribeCoversEveryEntry) {
  const auto& reg = wl::ArrivalRegistry::builtin();
  const std::string cat = reg.describe();
  ASSERT_EQ(reg.entries().size(), 6u);
  for (const auto& e : reg.entries()) {
    EXPECT_NE(cat.find(e.name), std::string::npos) << e.name;
    for (const auto& p : e.params) {
      EXPECT_NE(cat.find(p.key + "=" + p.default_value), std::string::npos)
          << e.name << ":" << p.key;
    }
  }
}

// -------------------------------------------------------- legacy resolver --

TEST(ArrivalResolve, LegacyMappingSelectsThePlanesHistoricalLoop) {
  EXPECT_STREQ(wl::resolve_arrival("", 0.0, true, {})->name(), "closed");
  EXPECT_STREQ(wl::resolve_arrival("", 0.0, false, {})->name(), "closed");
  EXPECT_STREQ(wl::resolve_arrival("", 5000.0, true, {})->name(), "open");
  EXPECT_STREQ(wl::resolve_arrival("", 5000.0, false, {})->name(), "paced");
  // An explicit spec wins over the legacy rate.
  EXPECT_STREQ(wl::resolve_arrival("closed", 5000.0, true, {})->name(),
               "closed");
  EXPECT_THROW((void)wl::resolve_arrival("warble", 0.0, true, {}),
               std::invalid_argument);
  EXPECT_THROW((void)wl::resolve_arrival("open:rate=-1", 0.0, true, {}),
               std::invalid_argument);
}

TEST(ArrivalResolve, PacedGapMatchesLegacyArithmetic) {
  auto paced = wl::make_paced_arrival(150'000.0);
  common::Xoshiro256 rng(1);
  // Legacy: gap = max(1, llround(1e9 / rate)); arrival(i) = gap * i.
  const sim::SimTime gap = 6667;
  EXPECT_EQ(paced->first_arrival(), 0);
  EXPECT_EQ(paced->next_arrival(1, 0, rng), gap);
  EXPECT_EQ(paced->next_arrival(7, 6 * gap, rng), 7 * gap);
}

// ------------------------------------------------ engine-level invariants --

TEST(ArrivalEngine, RunResultNamesTheArrivalProcess) {
  const wl::Trace trace = testing::golden_trace(1);
  auto opt = testing::golden_epoch_options(1, false, false);
  opt.arrival = "bursty:rate=150000,seed=9";
  const auto r = run_epoch(trace, opt);
  EXPECT_EQ(r.arrival_name, "bursty");
  EXPECT_GT(r.completed_ops, 0u);
}

/// Counts arrival events off the observer bus (the sixth seam).
class ArrivalCounter final : public engine::Observer {
 public:
  void on_arrival(const engine::ArrivalEvent& ev) override {
    ++count;
    EXPECT_GE(ev.at, last);
    last = ev.at;
  }
  std::uint64_t count = 0;
  sim::SimTime last = 0;
};

TEST(ArrivalEngine, ObserverSeesEveryIssueInTimeOrder) {
  const wl::Trace trace = testing::golden_trace(1);
  auto opt = testing::golden_epoch_options(1, false, /*open=*/true);
  ArrivalCounter counter;
  opt.observers.push_back(&counter);
  const auto r = run_epoch(trace, opt);
  EXPECT_EQ(counter.count, trace.ops.size());
  EXPECT_EQ(r.completed_ops + r.faults.failed_ops, counter.count);
}

// Every new arrival policy must be byte-identical across shard-thread
// counts on the live plane (the policy draws from policy-owned or
// issuer-owned streams only, never from worker state).
TEST(ArrivalEngine, LiveArrivalsBitIdenticalAcrossShardThreadCounts) {
  wl::TraceFalconConfig cfg;
  cfg.ops = 6'000;
  const wl::Trace timed = wl::make_trace_falcon(cfg);
  const char* specs[] = {"trace:speed=2", "bursty:rate=400000,seed=3",
                         "tenant:tenants=4,rate=50000,burst=8",
                         "paced:rate=300000", "open:rate=300000"};
  for (const char* spec : specs) {
    std::string fp1;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      auto opt = testing::golden_live_options(2, /*faulted=*/true,
                                              /*open=*/false);
      opt.arrival = spec;
      opt.shard_threads = threads;
      const std::string fp = testing::live_stats_fingerprint(
          run_live(timed, opt));
      if (threads == 1) {
        fp1 = fp;
      } else {
        EXPECT_EQ(fp, fp1) << spec << " diverged at shard_threads="
                           << threads;
      }
    }
  }
}

// The same specs replayed twice on the epoch DES give the same bytes
// (policy-private RNGs are seeded; nothing leaks from global state).
TEST(ArrivalEngine, EpochArrivalPoliciesAreDeterministic) {
  const wl::Trace trace = testing::golden_trace(3);
  wl::TraceFalconConfig cfg;
  cfg.ops = 6'000;
  const wl::Trace timed = wl::make_trace_falcon(cfg);
  const char* specs[] = {"bursty:rate=200000,seed=5",
                         "tenant:tenants=8,rate=20000", "paced:rate=200000"};
  for (const char* spec : specs) {
    auto opt = testing::golden_epoch_options(3, /*faulted=*/true,
                                             /*open=*/false);
    opt.arrival = spec;
    const std::string a = testing::run_result_fingerprint(
        run_epoch(trace, opt));
    const std::string b = testing::run_result_fingerprint(
        run_epoch(trace, opt));
    EXPECT_EQ(a, b) << spec;
  }
  {
    auto opt = testing::golden_epoch_options(3, false, false);
    opt.arrival = "trace";
    const std::string a =
        testing::run_result_fingerprint(run_epoch(timed, opt));
    const std::string b =
        testing::run_result_fingerprint(run_epoch(timed, opt));
    EXPECT_EQ(a, b) << "trace replay";
  }
}

}  // namespace
}  // namespace origami
