// Tests for the discrete-event engine and the network model.
#include <gtest/gtest.h>

#include <vector>

#include "origami/net/network.hpp"
#include "origami/sim/event_queue.hpp"
#include "origami/sim/time.hpp"

namespace origami {
namespace {

using sim::EventQueue;
using sim::SimTime;

// ------------------------------------------------------------ time units --

TEST(SimTimeUnits, Conversions) {
  EXPECT_EQ(sim::micros(1), 1000);
  EXPECT_EQ(sim::millis(1), 1000000);
  EXPECT_EQ(sim::seconds(1), 1000000000);
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(sim::to_micros(sim::micros(7)), 7.0);
}

// ----------------------------------------------------------- event queue --

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(300, [&] { order.push_back(3); });
  q.schedule_at(100, [&] { order.push_back(1); });
  q.schedule_at(200, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 300);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, EqualTimesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) q.schedule_after(10, chain);
  };
  q.schedule_at(0, chain);
  q.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 40);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(100, [&] { ++fired; });
  q.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 50);
  EXPECT_FALSE(q.empty());
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesClockWhenEmpty) {
  EventQueue q;
  q.run_until(1234);
  EXPECT_EQ(q.now(), 1234);
}

TEST(EventQueue, PastTimeScheduleClampsToNow) {
  // Regression: schedule_at documented t >= now() but never enforced it — a
  // past-time event executed with a stale timestamp, silently rewinding the
  // deterministic clock for everything it scheduled downstream.
  EventQueue q;
  std::vector<SimTime> seen;
  std::vector<int> order;
  q.schedule_at(100, [&] {
    order.push_back(1);
    seen.push_back(q.now());
    // Buggy caller asks for the virtual past; must run *at* 100, after the
    // other event already queued for 100 (FIFO via the sequence number).
    q.schedule_at(10, [&] {
      order.push_back(3);
      seen.push_back(q.now());
    });
  });
  q.schedule_at(100, [&] {
    order.push_back(2);
    seen.push_back(q.now());
  });
  q.schedule_at(200, [&] {
    order.push_back(4);
    seen.push_back(q.now());
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(seen, (std::vector<SimTime>{100, 100, 100, 200}));
  EXPECT_EQ(q.now(), 200);  // the clock never moved backwards
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.clear();
  q.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue q;
  SimTime observed = -1;
  q.schedule_at(100, [&] {
    q.schedule_after(25, [&] { observed = q.now(); });
  });
  q.run();
  EXPECT_EQ(observed, 125);
}

// --------------------------------------------------------------- network --

TEST(Network, LocalTrafficIsFree) {
  net::Network n;
  EXPECT_EQ(n.rtt(3, 3), 0);
  EXPECT_EQ(n.one_way(3, 3), 0);
  EXPECT_EQ(n.rpc_count(), 0u);
}

TEST(Network, RemoteRttNearBase) {
  net::NetworkParams p;
  p.base_rtt = sim::micros(100);
  p.jitter_frac = 0.05;
  net::Network n(p);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) sum += static_cast<double>(n.rtt(0, 1));
  EXPECT_NEAR(sum / 1000, static_cast<double>(sim::micros(100)),
              static_cast<double>(sim::micros(5)));
  EXPECT_EQ(n.rpc_count(), 1000u);
}

TEST(Network, ZeroJitterIsExact) {
  net::NetworkParams p;
  p.base_rtt = sim::micros(200);
  p.jitter_frac = 0.0;
  net::Network n(p);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(n.rtt(0, 1), sim::micros(200));
    EXPECT_EQ(n.one_way(0, 1), sim::micros(100));
  }
}

TEST(Network, DeterministicBySeed) {
  net::NetworkParams p;
  p.seed = 777;
  net::Network a(p);
  net::Network b(p);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.rtt(0, 1), b.rtt(0, 1));
}

TEST(Network, JitterNeverCollapsesLatency) {
  net::NetworkParams p;
  p.jitter_frac = 0.5;  // extreme jitter
  net::Network n(p);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(n.rtt(0, 1), p.base_rtt / 4);
  }
}

TEST(Network, ResetCounters) {
  net::Network n;
  (void)n.rtt(0, 1);
  n.reset_counters();
  EXPECT_EQ(n.rpc_count(), 0u);
}

}  // namespace
}  // namespace origami
