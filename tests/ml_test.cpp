// Tests for the from-scratch ML stack: dataset handling, the histogram
// GBDT (leaf-wise and level-wise), the MLP, and regression metrics.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <sstream>

#include "origami/common/rng.hpp"
#include "origami/ml/dataset.hpp"
#include "origami/ml/gbdt.hpp"
#include "origami/ml/metrics.hpp"
#include "origami/ml/mlp.hpp"

namespace origami::ml {
namespace {

Dataset make_linear_data(std::size_t n, std::uint64_t seed, double noise = 0.0,
                         std::size_t features = 3) {
  // y = 3*x0 - 2*x1 (+ noise); remaining features are pure noise.
  Dataset data;
  common::Xoshiro256 rng(seed);
  std::vector<float> row(features);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& x : row) x = static_cast<float>(rng.uniform_double());
    const double y =
        3.0 * row[0] - 2.0 * row[1] + noise * rng.normal();
    data.add_row(row, static_cast<float>(y));
  }
  return data;
}

Dataset make_step_data(std::size_t n, std::uint64_t seed) {
  // y = 10 if x0 > 0.5 else 0 — a single split suffices.
  Dataset data;
  common::Xoshiro256 rng(seed);
  std::vector<float> row(2);
  for (std::size_t i = 0; i < n; ++i) {
    row[0] = static_cast<float>(rng.uniform_double());
    row[1] = static_cast<float>(rng.uniform_double());
    data.add_row(row, row[0] > 0.5f ? 10.0f : 0.0f);
  }
  return data;
}

// --------------------------------------------------------------- Dataset --

TEST(Dataset, AddAndAccessRows) {
  Dataset data({"a", "b"});
  data.add_row(std::array<float, 2>{1.f, 2.f}, 3.f);
  data.add_row(std::array<float, 2>{4.f, 5.f}, 6.f);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.num_features(), 2u);
  EXPECT_FLOAT_EQ(data.row(1)[0], 4.f);
  EXPECT_FLOAT_EQ(data.label(0), 3.f);
  EXPECT_EQ(data.column(1), (std::vector<float>{2.f, 5.f}));
}

TEST(Dataset, SplitPartitionsAllRows) {
  const Dataset data = make_linear_data(1000, 1);
  auto [train, valid] = data.split(0.8, 42);
  EXPECT_EQ(train.size() + valid.size(), 1000u);
  EXPECT_NEAR(static_cast<double>(train.size()), 800.0, 1.0);
  EXPECT_EQ(train.num_features(), data.num_features());
}

TEST(Dataset, SplitIsDeterministic) {
  const Dataset data = make_linear_data(200, 2);
  auto [a1, b1] = data.split(0.5, 7);
  auto [a2, b2] = data.split(0.5, 7);
  ASSERT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_FLOAT_EQ(a1.label(i), a2.label(i));
  }
}

TEST(Dataset, AppendConcatenates) {
  Dataset a = make_linear_data(10, 3);
  const Dataset b = make_linear_data(15, 4);
  a.append(b);
  EXPECT_EQ(a.size(), 25u);
}

// ------------------------------------------------------------------ GBDT --

TEST(Gbdt, LearnsStepFunctionExactly) {
  const Dataset data = make_step_data(2000, 5);
  GbdtParams params;
  params.rounds = 30;
  params.learning_rate = 0.3;
  const GbdtModel model = GbdtModel::train(data, params);
  const auto pred = model.predict_batch(data);
  // A few points straddle the histogram bin containing the 0.5 boundary;
  // everything else must be exact.
  EXPECT_LT(rmse(pred, data.labels()), 0.8);
  EXPECT_NEAR(model.predict(std::array<float, 2>{0.9f, 0.5f}), 10.0, 1.0);
  EXPECT_NEAR(model.predict(std::array<float, 2>{0.1f, 0.5f}), 0.0, 1.0);
}

TEST(Gbdt, LearnsLinearFunction) {
  const Dataset train = make_linear_data(4000, 6, 0.05);
  const Dataset test = make_linear_data(500, 7, 0.0);
  GbdtParams params;
  params.rounds = 150;
  params.learning_rate = 0.1;
  const GbdtModel model = GbdtModel::train(train, params);
  const auto pred = model.predict_batch(test);
  EXPECT_LT(rmse(pred, test.labels()), 0.25);
  EXPECT_GT(r2(pred, test.labels()), 0.95);
}

TEST(Gbdt, ImportanceIdentifiesInformativeFeatures) {
  const Dataset data = make_linear_data(3000, 8, 0.0, /*features=*/5);
  GbdtParams params;
  params.rounds = 60;
  const GbdtModel model = GbdtModel::train(data, params);
  const auto ranking = model.importance_ranking();
  ASSERT_EQ(ranking.size(), 5u);
  // x0 (weight 3) and x1 (weight -2) carry all signal.
  EXPECT_TRUE((ranking[0] == 0 && ranking[1] == 1) ||
              (ranking[0] == 1 && ranking[1] == 0));
  EXPECT_GT(model.feature_importance()[0],
            10 * model.feature_importance()[3]);
}

TEST(Gbdt, SaveLoadRoundtripPredictsIdentically) {
  const Dataset data = make_linear_data(1000, 9, 0.1);
  GbdtParams params;
  params.rounds = 40;
  const GbdtModel model = GbdtModel::train(data, params);
  std::stringstream buf;
  model.save(buf);
  const GbdtModel loaded = GbdtModel::load(buf);
  EXPECT_EQ(loaded.num_trees(), model.num_trees());
  EXPECT_EQ(loaded.num_features(), model.num_features());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(loaded.predict(data.row(i)), model.predict(data.row(i)), 1e-9);
  }
}

TEST(Gbdt, EarlyStoppingShortensTraining) {
  const Dataset data = make_step_data(2000, 10);
  auto [train, valid] = data.split(0.8, 1);
  GbdtParams params;
  params.rounds = 400;
  params.early_stopping_rounds = 10;
  params.learning_rate = 0.3;
  const GbdtModel model = GbdtModel::train(train, params, &valid);
  // The step function converges almost immediately; early stopping must
  // cut far below the 400-round budget.
  EXPECT_LT(model.num_trees(), 100);
}

TEST(Gbdt, LevelWiseAlsoLearns) {
  const Dataset data = make_linear_data(3000, 11, 0.05);
  GbdtParams params;
  params.rounds = 120;
  params.leaf_wise = false;  // classic GBDT growth
  const GbdtModel model = GbdtModel::train(data, params);
  const auto pred = model.predict_batch(data);
  EXPECT_GT(r2(pred, data.labels()), 0.9);
}

TEST(Gbdt, BaggingStillLearns) {
  const Dataset data = make_linear_data(3000, 12, 0.05);
  GbdtParams params;
  params.rounds = 150;
  params.bagging_fraction = 0.6;
  const GbdtModel model = GbdtModel::train(data, params);
  const auto pred = model.predict_batch(data);
  EXPECT_GT(r2(pred, data.labels()), 0.9);
}

TEST(Gbdt, EmptyAndConstantDatasets) {
  Dataset empty;
  const GbdtModel m0 = GbdtModel::train(empty, {});
  EXPECT_EQ(m0.num_trees(), 0);

  Dataset constant({"x"});
  for (int i = 0; i < 50; ++i) {
    constant.add_row(std::array<float, 1>{1.0f}, 5.0f);
  }
  GbdtParams params;
  params.rounds = 10;
  const GbdtModel m1 = GbdtModel::train(constant, params);
  EXPECT_NEAR(m1.predict(std::array<float, 1>{1.0f}), 5.0, 1e-6);
}

TEST(Gbdt, DeterministicBySeed) {
  const Dataset data = make_linear_data(1000, 13, 0.1);
  GbdtParams params;
  params.rounds = 30;
  params.bagging_fraction = 0.7;
  const GbdtModel a = GbdtModel::train(data, params);
  const GbdtModel b = GbdtModel::train(data, params);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.predict(data.row(i)), b.predict(data.row(i)));
  }
}

class GbdtLeaves : public ::testing::TestWithParam<int> {};

TEST_P(GbdtLeaves, AccuracyImprovesOrHoldsWithCapacity) {
  const Dataset data = make_linear_data(2000, 14, 0.02);
  GbdtParams params;
  params.rounds = 80;
  params.max_leaves = GetParam();
  const GbdtModel model = GbdtModel::train(data, params);
  const auto pred = model.predict_batch(data);
  EXPECT_GT(r2(pred, data.labels()), 0.85) << "leaves=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Capacity, GbdtLeaves, ::testing::Values(4, 8, 32, 64));

// ------------------------------------------------------------------- MLP --

TEST(Mlp, LearnsLinearFunction) {
  const Dataset train = make_linear_data(3000, 15, 0.02);
  const Dataset test = make_linear_data(300, 16, 0.0);
  MlpParams params;
  params.epochs = 40;
  params.hidden = {32, 32, 16, 16};  // 4 hidden layers as in the paper
  const MlpModel model = MlpModel::train(train, params);
  EXPECT_EQ(model.num_layers(), 5u);  // 4 hidden + output
  const auto pred = model.predict_batch(test);
  EXPECT_GT(r2(pred, test.labels()), 0.9);
}

TEST(Mlp, HandlesEmptyDataset) {
  Dataset empty({"a", "b"});
  MlpParams params;
  params.epochs = 1;
  const MlpModel model = MlpModel::train(empty, params);
  EXPECT_EQ(model.num_layers(), 5u);
}

// --------------------------------------------------------------- metrics --

TEST(Metrics, RmseMaeKnownValues) {
  const std::vector<double> pred{1.0, 2.0, 3.0};
  const std::vector<float> truth{1.0f, 2.0f, 5.0f};
  EXPECT_NEAR(rmse(pred, truth), std::sqrt(4.0 / 3.0), 1e-9);
  EXPECT_NEAR(mae(pred, truth), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, R2PerfectAndMeanPredictor) {
  const std::vector<float> truth{1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(r2({1.0, 2.0, 3.0, 4.0}, truth), 1.0);
  EXPECT_DOUBLE_EQ(r2({2.5, 2.5, 2.5, 2.5}, truth), 0.0);
}

TEST(Metrics, SpearmanRankCorrelation) {
  const std::vector<float> truth{1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  // Perfect monotone (nonlinear) relation => rho = 1.
  EXPECT_NEAR(spearman({1.0, 4.0, 9.0, 16.0, 25.0}, truth), 1.0, 1e-9);
  // Perfect inverse => rho = -1.
  EXPECT_NEAR(spearman({5.0, 4.0, 3.0, 2.0, 1.0}, truth), -1.0, 1e-9);
  // Constant predictions => 0 by convention.
  EXPECT_DOUBLE_EQ(spearman({1.0, 1.0, 1.0, 1.0, 1.0}, truth), 0.0);
}

TEST(Metrics, SpearmanHandlesTies) {
  const std::vector<float> truth{1.0f, 1.0f, 2.0f, 2.0f};
  const double rho = spearman({1.0, 1.0, 2.0, 2.0}, truth);
  EXPECT_NEAR(rho, 1.0, 1e-9);
}

}  // namespace
}  // namespace origami::ml
