// The parallel analysis plane must be a pure optimisation: window analysis,
// Meta-OPT decisions, training data and whole-run CSV output are required to
// be bit-identical at any analysis thread count. These tests pin that
// contract (threads 1 vs 8, three seeds) plus the deterministic-chunking and
// parallel_for edge cases the reductions rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "origami/cluster/replay.hpp"
#include "origami/common/csv.hpp"
#include "origami/common/small_set.hpp"
#include "origami/common/thread_pool.hpp"
#include "origami/core/balancers.hpp"
#include "origami/core/meta_opt.hpp"
#include "origami/core/pipeline.hpp"
#include "origami/fs/live_replay.hpp"
#include "origami/wl/generators.hpp"

namespace origami {
namespace {

/// Restores the process-wide analysis pool to serial when a test exits, so
/// test order can never leak a parallel pool into unrelated suites.
struct SerialPoolGuard {
  ~SerialPoolGuard() { common::set_analysis_threads(1); }
};

wl::Trace small_trace(std::uint64_t seed) {
  wl::TraceRwConfig cfg;
  cfg.ops = 30'000;
  cfg.seed = seed;
  return wl::make_trace_rw(cfg);
}

// ------------------------------------------------------ parallel_for edges --

TEST(ParallelFor, EmptyRangeRunsNothing) {
  common::ThreadPool pool(4);
  std::atomic<int> calls{0};
  common::parallel_for(pool, 0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeBelowMinChunkRunsInline) {
  common::ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::vector<int> hit(10, 0);
  common::parallel_for(
      pool, 10,
      [&](std::size_t b, std::size_t e) {
        ++calls;
        for (std::size_t i = b; i < e; ++i) hit[i] = 1;
      },
      /*min_chunk=*/1024);
  EXPECT_EQ(calls.load(), 1);  // degenerates to one direct call
  for (int h : hit) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, IndivisibleRangeCoversEveryIndexOnce) {
  common::ThreadPool pool(3);
  const std::size_t n = 1001;  // not divisible by any chunking of 3 workers
  std::vector<std::atomic<int>> hits(n);
  common::parallel_for(
      pool, n,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      /*min_chunk=*/64);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

// ------------------------------------------------- deterministic chunking --

TEST(ChunkedReduction, BoundariesIndependentOfPoolSize) {
  // chunk_count depends only on (n, grain) — never on worker count.
  EXPECT_EQ(common::chunk_count(0, 100), 0u);
  EXPECT_EQ(common::chunk_count(99, 100), 1u);
  EXPECT_EQ(common::chunk_count(100, 100), 1u);
  EXPECT_EQ(common::chunk_count(101, 100), 2u);
  EXPECT_EQ(common::chunk_count(1'000'000, 100), common::kMaxChunks);

  for (std::size_t workers : {1u, 2u, 7u}) {
    common::ThreadPool pool(workers);
    const std::size_t n = 10'000;
    std::vector<std::vector<std::size_t>> bounds(
        common::chunk_count(n, 128), std::vector<std::size_t>{});
    common::parallel_for_chunks(
        pool, n, 128, [&](std::size_t c, std::size_t b, std::size_t e) {
          bounds[c] = {b, e};
        });
    // Every worker count sees the same chunk boundaries.
    std::size_t expect_begin = 0;
    for (const auto& be : bounds) {
      if (be.empty()) continue;
      EXPECT_EQ(be[0], expect_begin);
      expect_begin = be[1];
    }
    EXPECT_EQ(expect_begin, n);
  }
}

TEST(ChunkedReduction, ChunkOrderMergeMatchesSerialSum) {
  common::ThreadPool pool(8);
  const std::size_t n = 54'321;
  std::vector<std::int64_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = static_cast<std::int64_t>((i * 2654435761u) % 1000) - 500;
  }
  std::int64_t serial = 0;
  for (std::int64_t v : values) serial += v;

  std::vector<std::int64_t> partial(common::chunk_count(n, 1024), 0);
  common::parallel_for_chunks(
      pool, n, 1024, [&](std::size_t c, std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) partial[c] += values[i];
      });
  std::int64_t merged = 0;
  for (std::int64_t p : partial) merged += p;
  EXPECT_EQ(merged, serial);
}

// -------------------------------------------------------------- small set --

TEST(SmallSet, CountsDistinctBeyondInlineCapacity) {
  common::SmallSet<std::uint32_t, 4> set;
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t v = 0; v < 100; ++v) {
      const bool fresh = set.insert(v);
      EXPECT_EQ(fresh, round == 0) << v;
    }
  }
  EXPECT_EQ(set.size(), 100u);  // the old fixed cap would have stopped at 4
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(99));
  EXPECT_FALSE(set.contains(100));
  set.clear();
  EXPECT_TRUE(set.empty());
}

// ----------------------------------------------- analysis-plane identity --

TEST(Determinism, WindowAnalysisBitIdenticalAcrossThreadCounts) {
  SerialPoolGuard guard;
  for (std::uint64_t seed : {1, 2, 3}) {
    const wl::Trace trace = small_trace(seed);
    mds::PartitionMap map(trace.tree, 7);
    cluster::StaticBalancer chash(cluster::StaticBalancer::Kind::kCoarseHash);
    chash.prepare(trace.tree, map);
    const cost::CostModel model;

    common::set_analysis_threads(1);
    std::vector<sim::SimTime> dir_rct_1;
    const auto bins_1 = core::evaluate_window(trace.ops, trace.tree, map,
                                              model, true, 3, &dir_rct_1);
    const auto dirs_1 =
        core::window_dir_stats(trace.ops, trace.tree, map, model, true, 3);

    common::set_analysis_threads(8);
    std::vector<sim::SimTime> dir_rct_8;
    const auto bins_8 = core::evaluate_window(trace.ops, trace.tree, map,
                                              model, true, 3, &dir_rct_8);
    const auto dirs_8 =
        core::window_dir_stats(trace.ops, trace.tree, map, model, true, 3);

    EXPECT_EQ(bins_1.per_mds(), bins_8.per_mds()) << "seed " << seed;
    EXPECT_EQ(dir_rct_1, dir_rct_8) << "seed " << seed;
    ASSERT_EQ(dirs_1.size(), dirs_8.size());
    for (std::size_t i = 0; i < dirs_1.size(); ++i) {
      EXPECT_EQ(dirs_1[i].reads, dirs_8[i].reads);
      EXPECT_EQ(dirs_1[i].writes, dirs_8[i].writes);
      EXPECT_EQ(dirs_1[i].lsdir, dirs_8[i].lsdir);
      EXPECT_EQ(dirs_1[i].nsm_self, dirs_8[i].nsm_self);
      EXPECT_EQ(dirs_1[i].rct, dirs_8[i].rct);
    }
  }
}

TEST(Determinism, MetaOptDecisionsAndLabelsBitIdentical) {
  SerialPoolGuard guard;
  for (std::uint64_t seed : {1, 2, 3}) {
    const wl::Trace trace = small_trace(seed);
    mds::PartitionMap map(trace.tree, 7);
    cluster::StaticBalancer chash(cluster::StaticBalancer::Kind::kCoarseHash);
    chash.prepare(trace.tree, map);
    const cost::CostModel model;
    const core::MetaOpt engine(model, core::MetaOptParams{});

    common::set_analysis_threads(1);
    std::vector<core::MetaOpt::Labelled> labels_1;
    const auto dec_1 = engine.optimize(trace.ops, trace.tree, map, &labels_1);

    common::set_analysis_threads(8);
    std::vector<core::MetaOpt::Labelled> labels_8;
    const auto dec_8 = engine.optimize(trace.ops, trace.tree, map, &labels_8);

    ASSERT_EQ(dec_1.size(), dec_8.size()) << "seed " << seed;
    for (std::size_t i = 0; i < dec_1.size(); ++i) {
      EXPECT_EQ(dec_1[i].subtree, dec_8[i].subtree);
      EXPECT_EQ(dec_1[i].from, dec_8[i].from);
      EXPECT_EQ(dec_1[i].to, dec_8[i].to);
      EXPECT_EQ(dec_1[i].predicted_benefit, dec_8[i].predicted_benefit);
    }
    ASSERT_EQ(labels_1.size(), labels_8.size()) << "seed " << seed;
    for (std::size_t i = 0; i < labels_1.size(); ++i) {
      EXPECT_EQ(labels_1[i].subtree, labels_8[i].subtree);
      EXPECT_EQ(labels_1[i].from, labels_8[i].from);
      EXPECT_EQ(labels_1[i].to, labels_8[i].to);
      EXPECT_EQ(labels_1[i].benefit, labels_8[i].benefit);
      EXPECT_EQ(labels_1[i].load, labels_8[i].load);
      EXPECT_EQ(labels_1[i].overhead, labels_8[i].overhead);
    }
  }
}

TEST(Determinism, TrainingDataBitIdenticalAcrossThreadCounts) {
  SerialPoolGuard guard;
  const wl::Trace trace = small_trace(5);
  core::LabelGenOptions lg;
  lg.replay.mds_count = 4;
  lg.replay.epoch_length = sim::millis(250);
  lg.replay.warmup_epochs = 2;

  lg.threads = 1;
  const auto r1 = core::generate_labels(trace, lg);
  lg.threads = 8;
  const auto r8 = core::generate_labels(trace, lg);

  ASSERT_EQ(r1.benefit_data.size(), r8.benefit_data.size());
  EXPECT_EQ(r1.benefit_data.labels(), r8.benefit_data.labels());
  for (std::size_t i = 0; i < r1.benefit_data.size(); ++i) {
    const auto a = r1.benefit_data.row(i);
    const auto b = r8.benefit_data.row(i);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t f = 0; f < a.size(); ++f) EXPECT_EQ(a[f], b[f]);
  }
  ASSERT_EQ(r1.popularity_data.size(), r8.popularity_data.size());
  EXPECT_EQ(r1.popularity_data.labels(), r8.popularity_data.labels());
  EXPECT_EQ(r1.run.completed_ops, r8.run.completed_ops);
  EXPECT_EQ(r1.run.makespan, r8.run.makespan);
}

// Replays the trace under the Meta-OPT oracle and dumps a fig5_overall-style
// CSV row; the two files must match byte for byte.
std::string run_and_dump_csv(const wl::Trace& trace, std::size_t threads,
                             const std::string& path) {
  common::set_analysis_threads(threads);
  cluster::ReplayOptions opt;
  opt.mds_count = 4;
  opt.clients = 16;
  opt.epoch_length = sim::millis(250);
  opt.warmup_epochs = 2;
  core::MetaOptOracleBalancer balancer(cost::CostModel(opt.cost_params),
                                       core::MetaOptParams{},
                                       core::RebalanceTrigger{0.05});
  const auto r = cluster::replay_trace(trace, opt, balancer);
  {
    common::CsvWriter csv(path);
    csv.header({"strategy", "mds", "throughput", "steady_throughput",
                "mean_latency_us", "p99_latency_us", "rpc_per_request",
                "migrations", "inodes_migrated", "makespan_ns"});
    csv.field(r.balancer_name)
        .field(static_cast<std::uint64_t>(r.mds_count))
        .field(r.throughput_ops)
        .field(r.steady_throughput_ops)
        .field(r.mean_latency_us)
        .field(r.p99_latency_us)
        .field(r.rpc_per_request)
        .field(r.migrations)
        .field(r.inodes_migrated)
        .field(static_cast<std::int64_t>(r.makespan));
    csv.endrow();
  }
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Determinism, ReplayCsvByteIdenticalAcrossThreadCounts) {
  SerialPoolGuard guard;
  for (std::uint64_t seed : {1, 2, 3}) {
    const wl::Trace trace = small_trace(seed);
    const std::string p1 = ::testing::TempDir() + "det_t1.csv";
    const std::string p8 = ::testing::TempDir() + "det_t8.csv";
    const std::string csv_1 = run_and_dump_csv(trace, 1, p1);
    const std::string csv_8 = run_and_dump_csv(trace, 8, p8);
    EXPECT_FALSE(csv_1.empty());
    EXPECT_EQ(csv_1, csv_8) << "seed " << seed;
    std::remove(p1.c_str());
    std::remove(p8.c_str());
  }
}

// ------------------------------------------------- live-mode determinism --

/// Serialises everything a live replay reports, so two runs can be compared
/// for bit-identity with a single string equality.
std::string live_stats_fingerprint(const fs::LiveReplayStats& s) {
  std::ostringstream out;
  out << s.executed << ' ' << s.failed << ' ' << s.epochs << ' '
      << s.migrations << ' ' << s.shard_imbalance << '\n';
  for (std::uint64_t ops : s.shard_ops) out << ops << ' ';
  out << '\n';
  // Virtual-clock serving metrics, including the full latency histogram
  // shape (count/mean/min/max and a quantile ladder): byte-identity here
  // means the per-shard partials merged identically.
  out << s.makespan << ' ' << s.throughput_ops << ' ' << s.latency.count()
      << ' ' << s.latency.mean() << ' ' << s.latency.min() << ' '
      << s.latency.max();
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    out << ' ' << s.latency.quantile(q);
  }
  out << '\n';
  for (sim::SimTime b : s.shard_busy) out << b << ' ';
  out << '\n';
  for (std::uint64_t n : s.shard_served) out << n << ' ';
  out << '\n';
  const cluster::RobustnessStats& f = s.faults;
  out << f.retries << ' ' << f.timeouts << ' ' << f.rpcs_lost << ' '
      << f.rpcs_corrupted << ' ' << f.failed_ops << ' ' << f.crashes << ' '
      << f.failovers << ' ' << f.failover_dirs << ' ' << f.restored_dirs
      << ' ' << f.aborted_migrations << ' ' << f.time_down << ' '
      << f.journal_records << ' ' << f.journal_checkpoints << ' '
      << f.journal_replays << ' ' << f.journal_replayed_records << ' '
      << f.torn_tail_truncations << ' ' << f.fenced_rejections << ' '
      << f.prepared_migrations << ' ' << f.committed_migrations << ' '
      << f.recovery_windows << '\n';
  return out.str();
}

TEST(Determinism, LiveReplayBitIdenticalAcrossRunsPerSeed) {
  for (std::uint64_t seed : {1, 2, 3}) {
    wl::TraceRwConfig cfg;
    cfg.ops = 20'000;
    cfg.projects = 4;
    cfg.modules_per_project = 3;
    cfg.sources_per_module = 8;
    cfg.headers_shared = 40;
    cfg.seed = seed;
    const wl::Trace trace = wl::make_trace_rw(cfg);

    fs::LiveReplayOptions opt;
    opt.epoch_ops = 4'000;
    opt.faults.seed = seed * 1000 + 7;
    opt.faults.crash_prob = 0.15;
    opt.faults.crash_recovery = sim::millis(300);
    opt.faults.rpc_loss_prob = 0.003;

    fs::OrigamiFs::Options fopt;
    fopt.shards = 4;
    fs::OrigamiFs fs_a(fopt);
    fs::OrigamiFs fs_b(fopt);
    const auto ra = fs::replay_on_live(trace, fs_a, opt);
    const auto rb = fs::replay_on_live(trace, fs_b, opt);
    EXPECT_EQ(live_stats_fingerprint(ra), live_stats_fingerprint(rb))
        << "seed " << seed;
    // The fault layer really fired (this is not vacuous determinism).
    EXPECT_GT(ra.faults.crashes + ra.faults.rpcs_lost, 0u) << "seed " << seed;
  }
}

TEST(Determinism, LiveReplayBitIdenticalAcrossShardThreadCounts) {
  // The acceptance bar for the concurrent serving plane: the full stats
  // fingerprint (counters, latency histogram, per-shard busy clocks) is
  // byte-identical at --shard-threads 1/2/8, on 3 seeds, both clean and
  // with the fault plan armed.
  for (std::uint64_t seed : {1, 2, 3}) {
    wl::TraceRwConfig cfg;
    cfg.ops = 20'000;
    cfg.projects = 4;
    cfg.modules_per_project = 3;
    cfg.sources_per_module = 8;
    cfg.headers_shared = 40;
    cfg.seed = seed;
    const wl::Trace trace = wl::make_trace_rw(cfg);

    for (const bool faulted : {false, true}) {
      fs::LiveReplayOptions opt;
      opt.epoch_ops = 4'000;
      if (faulted) {
        opt.faults.seed = seed * 1000 + 7;
        opt.faults.crash_prob = 0.15;
        opt.faults.crash_recovery = sim::millis(300);
        opt.faults.straggler_prob = 0.2;
        opt.faults.rpc_loss_prob = 0.003;
        opt.recovery.commit_mode = recovery::CommitMode::kAsync;
        opt.recovery.commit_window = sim::millis(1);
        opt.recovery.commit_batch = 32;
        opt.recovery.fencing = true;
      }

      std::string baseline;
      for (const std::uint32_t threads : {1u, 2u, 8u}) {
        fs::OrigamiFs::Options fopt;
        fopt.shards = 4;
        fs::OrigamiFs fsys(fopt);
        fs::LiveReplayOptions run = opt;
        run.shard_threads = threads;
        const auto stats = fs::replay_on_live(trace, fsys, run);
        const std::string fp = live_stats_fingerprint(stats);
        if (baseline.empty()) {
          baseline = fp;
          EXPECT_GT(stats.executed, 0u);
          EXPECT_GT(stats.latency.count(), 0u);
        } else {
          EXPECT_EQ(fp, baseline) << "seed " << seed << " threads " << threads
                                  << (faulted ? " faulted" : " clean");
        }
      }
    }
  }
}

TEST(Determinism, ArrivalPoliciesBitIdenticalAcrossShardThreadCounts) {
  // The arrival plane must not break live-mode determinism: every new
  // open-loop process (trace replay, bursty, tenant) yields a byte-identical
  // stats fingerprint at --shard-threads 1/2/8, faults armed. This suite
  // runs under TSan in CI, so data races in the issue path surface here.
  wl::TraceFalconConfig cfg;
  cfg.ops = 6'000;
  const wl::Trace trace = wl::make_trace_falcon(cfg);

  for (const char* arrival :
       {"trace:speed=2", "bursty:rate=400000,seed=3",
        "tenant:tenants=4,rate=50000,burst=8"}) {
    fs::LiveReplayOptions opt;
    opt.epoch_ops = 1'500;
    opt.arrival = arrival;
    opt.faults.seed = 77;
    opt.faults.crash_prob = 0.1;
    opt.faults.crash_recovery = sim::millis(300);
    opt.faults.rpc_loss_prob = 0.003;

    std::string baseline;
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      fs::OrigamiFs::Options fopt;
      fopt.shards = 4;
      fs::OrigamiFs fsys(fopt);
      fs::LiveReplayOptions run = opt;
      run.shard_threads = threads;
      const auto stats = fs::replay_on_live(trace, fsys, run);
      const std::string fp = live_stats_fingerprint(stats);
      if (baseline.empty()) {
        baseline = fp;
        EXPECT_GT(stats.executed, 0u) << arrival;
      } else {
        EXPECT_EQ(fp, baseline) << arrival << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace origami
